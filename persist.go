package otif

import (
	"io"

	"otif/internal/persist"
	"otif/internal/query"
	"otif/internal/store"
)

// SaveModels writes the pipeline's trained model bundle (theta_best,
// background model, proxy models, window sizes, tracking models,
// refinement clusters) in OTIF's versioned, checksummed binary format. It
// returns ErrNotTrained if Train (or LoadModels) has not run.
func (p *Pipeline) SaveModels(w io.Writer) error {
	if p.sys.Recurrent == nil {
		return ErrNotTrained
	}
	return persist.SaveModels(w, p.sys)
}

// LoadModels restores a previously saved model bundle into this pipeline,
// replacing Train. The pipeline must have been opened on the same dataset
// (name and set sizes) the bundle was trained on; a loaded pipeline
// produces bit-identical extraction results to the one that saved it.
func (p *Pipeline) LoadModels(r io.Reader) error {
	return persist.LoadModels(r, p.sys)
}

// WriteTo serializes the track set in OTIF's self-describing binary track
// format (v2): the header records frame rate, nominal geometry, frames
// per clip and dataset name, so the file reloads with ReadTrackSet and
// zero positional arguments. n is the number of bytes written.
func (ts *TrackSet) WriteTo(w io.Writer) (n int64, err error) {
	cw := &countWriter{w: w}
	err = persist.WriteTracksV2(cw, ts.PerClip, persist.TrackMeta{
		FPS:     ts.ctx.FPS,
		NomW:    ts.ctx.NomW,
		NomH:    ts.ctx.NomH,
		Frames:  ts.ctx.Frames,
		Dataset: ts.Dataset,
	})
	return cw.n, err
}

// ExportSegments writes the track set as sealed segment files (OTIFSEG1,
// one "<seg-id>.otifseg" per clipsPerSegment clips; <= 0 writes one
// segment) into dir, creating it if needed. The files are self-describing
// and deterministic: a replica started with otifd -segments-dir over them
// answers every /v1/query/* request byte-identically to the exporting
// process. It returns the written paths in segment order.
func (ts *TrackSet) ExportSegments(dir string, clipsPerSegment int) ([]string, error) {
	return store.ExportSegments(dir, ts.Dataset, ts.ctx, ts.PerClip, clipsPerSegment)
}

// TrackSetOption adjusts how a stored track set is loaded. Options exist
// for legacy v1 files, whose headers carry no clip geometry; v2 files are
// self-describing and need none. An explicitly passed option overrides the
// file header either way.
type TrackSetOption func(*trackSetConfig)

type trackSetConfig struct {
	fps, nomW, nomH, frames int
	dataset                 string
}

// WithFPS supplies the clip frame rate for files whose header lacks it.
func WithFPS(fps int) TrackSetOption {
	return func(c *trackSetConfig) { c.fps = fps }
}

// WithGeometry supplies the nominal frame dimensions.
func WithGeometry(nomW, nomH int) TrackSetOption {
	return func(c *trackSetConfig) { c.nomW, c.nomH = nomW, nomH }
}

// WithFramesPerClip supplies the clip length in frames.
func WithFramesPerClip(frames int) TrackSetOption {
	return func(c *trackSetConfig) { c.frames = frames }
}

// WithDatasetName labels the loaded set with its dataset name.
func WithDatasetName(name string) TrackSetOption {
	return func(c *trackSetConfig) { c.dataset = name }
}

// ReadTrackSet loads a stored track set. Files written by WriteTo (format
// v2) are self-describing: the clip geometry comes from the file header
// and no options are needed. Legacy v1 files carry no header metadata;
// pass WithFPS / WithGeometry / WithFramesPerClip so frame-window and
// region queries know the clip geometry (loading succeeds without them,
// but frame sweeps see zero-length clips). Explicit options override the
// header.
func ReadTrackSet(r io.Reader, opts ...TrackSetOption) (*TrackSet, error) {
	perClip, meta, err := persist.ReadTracksAuto(r)
	if err != nil {
		return nil, err
	}
	var cfg trackSetConfig
	if meta != nil {
		cfg = trackSetConfig{
			fps: meta.FPS, nomW: meta.NomW, nomH: meta.NomH,
			frames: meta.Frames, dataset: meta.Dataset,
		}
	}
	for _, opt := range opts {
		opt(&cfg)
	}
	return &TrackSet{
		PerClip: perClip,
		Dataset: cfg.dataset,
		ctx: query.Context{
			FPS: cfg.fps, NomW: cfg.nomW, NomH: cfg.nomH, Frames: cfg.frames,
		},
	}, nil
}

// ReadTrackSetLegacy loads a stored track set with positional context
// arguments.
//
// Deprecated: use ReadTrackSet. v2 files need no arguments at all; for v1
// files pass WithFPS, WithGeometry and WithFramesPerClip.
func ReadTrackSetLegacy(r io.Reader, fps, nomW, nomH, framesPerClip int) (*TrackSet, error) {
	return ReadTrackSet(r,
		WithFPS(fps), WithGeometry(nomW, nomH), WithFramesPerClip(framesPerClip))
}

// ReadTrackSetFor loads a stored track set with the pipeline's clip
// geometry (overriding any file header, so the set always matches the
// pipeline's datasets).
func (p *Pipeline) ReadTrackSetFor(r io.Reader) (*TrackSet, error) {
	ctx := p.sys.Ctx()
	return ReadTrackSet(r,
		WithFPS(ctx.FPS), WithGeometry(ctx.NomW, ctx.NomH),
		WithFramesPerClip(ctx.Frames), WithDatasetName(p.sys.DS.Name))
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
