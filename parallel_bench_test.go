package otif_test

// Benchmarks for the parallel execution layer: the same workload measured
// serially (one worker) and on the full worker pool. Because results are
// bit-for-bit identical at any worker count (see DESIGN.md "Parallel
// execution"), the wall-clock ratio is pure speedup. The `speedup-x`
// metric compares against a serial run timed once per benchmark.

import (
	"io"
	"runtime"
	"testing"
	"time"

	"otif"
	"otif/internal/bench"
	"otif/internal/core"
	"otif/internal/dataset"
	"otif/internal/parallel"
	"otif/internal/tuner"
)

// extractionSystem trains one system for the RunSet benchmarks.
var extractionSys *core.System

func benchSystem(b *testing.B) *core.System {
	b.Helper()
	if extractionSys == nil {
		ds, err := dataset.Build("caldot1", dataset.SetSpec{Clips: 8, ClipSeconds: 6}, 7)
		if err != nil {
			b.Fatal(err)
		}
		sys := core.NewSystem(ds)
		metric := core.MetricFor(ds)
		best, _ := tuner.SelectBest(sys, metric)
		sys.FinishTraining(best, 42)
		extractionSys = sys
	}
	return extractionSys
}

// BenchmarkRunSetSerial is the one-worker reference for BenchmarkRunSetParallel.
func BenchmarkRunSetSerial(b *testing.B) {
	sys := benchSystem(b)
	parallel.SetWorkers(1)
	defer parallel.SetWorkers(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.RunSet(sys.Best, sys.DS.Val)
	}
}

// BenchmarkRunSetParallel runs the identical workload on the full pool and
// reports the measured speedup over a serial reference run.
func BenchmarkRunSetParallel(b *testing.B) {
	sys := benchSystem(b)

	parallel.SetWorkers(1)
	start := time.Now()
	serialRes := sys.RunSet(sys.Best, sys.DS.Val)
	serialWall := time.Since(start)

	parallel.SetWorkers(0) // GOMAXPROCS
	defer parallel.SetWorkers(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := sys.RunSet(sys.Best, sys.DS.Val)
		if res.Runtime != serialRes.Runtime {
			b.Fatalf("parallel runtime %v != serial %v", res.Runtime, serialRes.Runtime)
		}
	}
	b.StopTimer()
	parWall := b.Elapsed() / time.Duration(b.N)
	if parWall > 0 {
		b.ReportMetric(float64(serialWall)/float64(parWall), "speedup-x")
	}
	b.ReportMetric(float64(runtime.GOMAXPROCS(0)), "gomaxprocs")
}

// BenchmarkSuiteParallel trains a fresh two-dataset suite end to end
// (train, tune, Table 2 curves) on the full pool, reporting speedup over a
// one-worker reference measured once.
func BenchmarkSuiteParallel(b *testing.B) {
	spec := dataset.SetSpec{Clips: 3, ClipSeconds: 5}
	datasets := []string{"caldot1", "warsaw"}
	run := func() {
		s := bench.NewSuite(spec, 7)
		if _, err := s.Table2(io.Discard, datasets); err != nil {
			b.Fatal(err)
		}
	}

	parallel.SetWorkers(1)
	start := time.Now()
	run()
	serialWall := time.Since(start)

	parallel.SetWorkers(0)
	defer parallel.SetWorkers(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
	b.StopTimer()
	parWall := b.Elapsed() / time.Duration(b.N)
	if parWall > 0 {
		b.ReportMetric(float64(serialWall)/float64(parWall), "speedup-x")
	}
}

// BenchmarkPipelineExtractParallel measures the public API path: track
// extraction over the test set with the default worker pool.
func BenchmarkPipelineExtractParallel(b *testing.B) {
	sys := benchSystem(b)
	_ = otif.Parallelism() // exercise the public accessor
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys.RunSet(sys.Best, sys.DS.Test)
	}
}
