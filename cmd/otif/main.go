// Command otif runs the OTIF pipeline end to end on one simulated dataset:
// it trains the models, tunes the speed-accuracy curve, extracts all tracks
// from the test set with a chosen configuration, and answers a few queries
// from the stored tracks.
//
//	otif -dataset caldot1                 # full workflow, fastest-within-5% config
//	otif -dataset tokyo -tolerance 0.02   # pick a more accurate configuration
//	otif -dataset jackson -curve          # print the whole tuned curve and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"otif"
)

func main() {
	var (
		name     = flag.String("dataset", "caldot1", "dataset name (see -list)")
		list     = flag.Bool("list", false, "list datasets and exit")
		curve    = flag.Bool("curve", false, "print the tuned speed-accuracy curve and exit")
		tol      = flag.Float64("tolerance", 0.05, "accuracy tolerance when picking the execution configuration")
		clips    = flag.Int("clips", 0, "clips per set (0 = default)")
		seconds  = flag.Float64("seconds", 0, "seconds per clip (0 = default)")
		saveTo   = flag.String("save", "", "save the trained model bundle to this file")
		loadFm   = flag.String("load", "", "load a trained model bundle instead of training")
		tracksF  = flag.String("tracks", "", "write the extracted track set to this file (self-describing v2 format)")
		queryF   = flag.String("query-tracks", "", "load a stored track file and answer queries from it, skipping the pipeline entirely")
		segsDir  = flag.String("export-segments", "", "export the track set as shippable segment files (OTIFSEG1) into this directory")
		segClips = flag.Int("segment-clips", 4, "clips per exported segment for -export-segments (<= 0 = one segment)")
		nwork    = flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS, 1 = serial); results are identical at any setting")
		cacheMB  = flag.Int("cache-mb", 64, "frame cache budget in MiB (<= 0 disables); results are identical at any setting")
		prefetch = flag.Int("prefetch", otif.Prefetch(), "decode-ahead depth in frames (<= 0 disables); results are identical at any setting")
		prec     = flag.String("precision", "float64", "inference numeric backend: float64 (bit-exact reference) or float32 (faster, tolerance-tested)")
		metricsF = flag.Bool("metrics", false, "print the metrics registry (text form) after the run")
		traceOut = flag.String("trace-out", "", "record spans in the flight recorder and write them to this file")
		traceFmt = flag.String("trace-format", "otif", "trace file format for -trace-out: otif (span JSON) or chrome (Perfetto-loadable trace events)")
		traceCap = flag.Int("trace-spans", 0, "flight-recorder span capacity for -trace-out (0 = default); oldest spans are overwritten when full")
	)
	flag.Parse()
	otif.SetParallelism(*nwork)
	otif.SetCacheMB(*cacheMB)
	otif.SetPrefetch(*prefetch)
	if err := otif.SetPrecision(*prec); err != nil {
		fmt.Fprintln(os.Stderr, "otif:", err)
		os.Exit(2)
	}
	if *traceFmt != "otif" && *traceFmt != "chrome" {
		fmt.Fprintf(os.Stderr, "otif: bad -trace-format %q (want otif or chrome)\n", *traceFmt)
		os.Exit(2)
	}
	if *traceOut != "" {
		otif.EnableTracing(*traceCap)
	}

	if *list {
		for _, d := range otif.Datasets() {
			fmt.Println(d)
		}
		return
	}

	// -query-tracks: the pure post-processing workflow. The v2 track
	// format is self-describing, so no dataset, geometry or frame-rate
	// arguments are needed — open the file and query.
	if *queryF != "" {
		f, err := os.Open(*queryF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "otif:", err)
			os.Exit(1)
		}
		ts, err := otif.ReadTrackSet(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "otif:", err)
			os.Exit(1)
		}
		fmt.Printf("loaded %s: dataset=%q clips=%d\n", *queryF, ts.Dataset, len(ts.PerClip))
		if *segsDir != "" {
			exportSegments(ts, *segsDir, *segClips)
		}
		counts := ts.Query().Category("car").Count()
		total := 0
		for _, c := range counts {
			total += c
		}
		fmt.Printf("  unique cars per clip: %v (total %d)\n", counts, total)
		frames := ts.Query().Category("car").MinCount(2).Limit(3).MinSep(1).Frames()
		for clip, ms := range frames {
			for _, m := range ms {
				fmt.Printf("  clip %d frame %d: %d cars visible\n", clip, m.FrameIdx, len(m.Boxes))
			}
		}
		fmt.Printf("  average visible cars per clip: %.1f...\n", mean(ts.Query().Category("car").AvgVisible()))
		finish(*metricsF, *traceOut, *traceFmt)
		return
	}

	start := time.Now()
	pipe, err := otif.Open(*name, otif.Options{ClipsPerSet: *clips, ClipSeconds: *seconds})
	if err != nil {
		fmt.Fprintln(os.Stderr, "otif:", err)
		os.Exit(1)
	}
	if *loadFm != "" {
		f, err := os.Open(*loadFm)
		if err != nil {
			fmt.Fprintln(os.Stderr, "otif:", err)
			os.Exit(1)
		}
		if err := pipe.LoadModels(f); err != nil {
			fmt.Fprintln(os.Stderr, "otif:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("loaded model bundle from %s (wall %v)\n", *loadFm, time.Since(start).Round(time.Millisecond))
	} else {
		best := pipe.Train()
		fmt.Printf("theta_best: %v   (wall %v)\n", best, time.Since(start).Round(time.Millisecond))
	}
	if *saveTo != "" {
		f, err := os.Create(*saveTo)
		if err != nil {
			fmt.Fprintln(os.Stderr, "otif:", err)
			os.Exit(1)
		}
		if err := pipe.SaveModels(f); err != nil {
			fmt.Fprintln(os.Stderr, "otif:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Println("saved model bundle to", *saveTo)
	}

	points, err := pipe.Tune()
	if err != nil {
		fmt.Fprintln(os.Stderr, "otif:", err)
		os.Exit(1)
	}
	fmt.Println("speed-accuracy curve (validation, simulated seconds):")
	for _, p := range points {
		fmt.Printf("  %-55v rt=%8.2fs acc=%.3f\n", p.Cfg, p.Runtime, p.Accuracy)
	}
	if *curve {
		finish(*metricsF, *traceOut, *traceFmt)
		return
	}

	pick, err := otif.PickFastestWithin(points, *tol)
	if err != nil {
		fmt.Fprintln(os.Stderr, "otif:", err)
		os.Exit(1)
	}
	fmt.Printf("\nexecuting with %v\n", pick.Cfg)
	ts, err := pipe.Extract(pick.Cfg, otif.Test)
	if err != nil {
		fmt.Fprintln(os.Stderr, "otif:", err)
		os.Exit(1)
	}
	acc, err := pipe.Accuracy(ts, otif.Test)
	if err != nil {
		fmt.Fprintln(os.Stderr, "otif:", err)
		os.Exit(1)
	}
	fmt.Printf("test-set extraction: %.2f simulated s, accuracy %.3f (wall %v)\n",
		ts.Runtime, acc, time.Since(start).Round(time.Millisecond))
	if *tracksF != "" {
		f, err := os.Create(*tracksF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "otif:", err)
			os.Exit(1)
		}
		if n, err := ts.WriteTo(f); err != nil {
			fmt.Fprintln(os.Stderr, "otif:", err)
			os.Exit(1)
		} else {
			fmt.Printf("stored tracks in %s (%d bytes)\n", *tracksF, n)
		}
		f.Close()
	}
	if *segsDir != "" {
		exportSegments(ts, *segsDir, *segClips)
	}

	// A few exploratory queries over the stored tracks.
	counts := ts.CountTracks("car")
	total := 0
	for _, c := range counts {
		total += c
	}
	fmt.Printf("\nqueries over stored tracks (no further decoding or inference):\n")
	fmt.Printf("  unique cars per clip: %v (total %d)\n", counts, total)

	if movements := pipe.Movements(); len(movements) > 0 {
		agg := map[string]int{}
		for _, m := range ts.PathBreakdown("car", movements, 0.22*float64(pipe.System().DS.Cfg.NomW)) {
			for k, v := range m {
				agg[k] += v
			}
		}
		keys := make([]string, 0, len(agg))
		for k := range agg {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		fmt.Printf("  path breakdown:")
		for _, k := range keys {
			fmt.Printf(" %s=%d", k, agg[k])
		}
		fmt.Println()
	}

	braking := ts.HardBraking(250)
	nb := 0
	for _, b := range braking {
		nb += len(b)
	}
	fmt.Printf("  hard-braking tracks (decel >= 250 px/s^2): %d\n", nb)
	avg := ts.AvgVisible("car")
	fmt.Printf("  average visible cars per clip: %v\n", fmt.Sprintf("%.1f...", mean(avg)))

	finish(*metricsF, *traceOut, *traceFmt)
}

// exportSegments writes the track set as segment files for serving from a
// replica (otifd -segments-dir).
func exportSegments(ts *otif.TrackSet, dir string, clipsPerSeg int) {
	paths, err := ts.ExportSegments(dir, clipsPerSeg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "otif:", err)
		os.Exit(1)
	}
	fmt.Printf("exported %d segment file(s) to %s\n", len(paths), dir)
}

// finish emits the optional observability outputs: the metrics registry in
// text form on stdout, and the flight recorder's spans to a file in the
// selected trace format.
func finish(metrics bool, traceOut, traceFmt string) {
	if metrics {
		fmt.Println("\nmetrics:")
		snap := otif.Snapshot()
		snap.WriteText(os.Stdout)
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "otif:", err)
			os.Exit(1)
		}
		var werr error
		if traceFmt == "chrome" {
			werr = otif.WriteChromeTrace(f)
		} else {
			werr = otif.WriteTrace(f)
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "otif:", werr)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("wrote span trace (%s format) to %s\n", traceFmt, traceOut)
	}
}

func mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}
