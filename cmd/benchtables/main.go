// Command benchtables regenerates every table and figure of the paper's
// evaluation section from the simulated substrate:
//
//	benchtables -table 2              # Table 2 (track query runtimes)
//	benchtables -figure 5             # Figure 5 (speed-accuracy curves)
//	benchtables -table 3              # Table 3 (frame-level limit queries)
//	benchtables -figure 6             # Figure 6 (cost breakdown)
//	benchtables -table 4              # Table 4 (ablation study)
//	benchtables -figure 7             # Figure 7 (proxy model analysis)
//	benchtables -table validate       # §4.6 implementation validation
//	benchtables -all                  # everything
//
// Use -datasets to restrict expensive tables to a subset, and
// -clips/-seconds to change the sampled set sizes (runtimes are always
// scaled to the paper's one-hour sets).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"otif/internal/bench"
	"otif/internal/dataset"
	"otif/internal/nn"
	"otif/internal/obs"
	"otif/internal/parallel"
	"otif/internal/video"
)

func main() {
	var (
		table    = flag.String("table", "", "table to regenerate: 2, 3, 4, variable, validate")
		figure   = flag.String("figure", "", "figure to regenerate: 5, 6, 7")
		all      = flag.Bool("all", false, "regenerate everything")
		datasets = flag.String("datasets", "", "comma-separated dataset subset")
		clips    = flag.Int("clips", dataset.DefaultSpec.Clips, "clips per set")
		seconds  = flag.Float64("seconds", dataset.DefaultSpec.ClipSeconds, "seconds per clip")
		seed     = flag.Int64("seed", 7, "sampling seed")
		nworkers = flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS, 1 = serial); results are identical at any setting")
		cacheMB  = flag.Int("cache-mb", 64, "frame cache budget in MiB (<= 0 disables); results are identical at any setting")
		prefetch = flag.Int("prefetch", video.DefaultPrefetchDepth, "decode-ahead depth in frames (<= 0 disables); results are identical at any setting")
		perfOut  = flag.String("perf", "", "write the kernel/extraction performance report (JSON) to this file and exit")
		perfGate = flag.Bool("perf-gate", false, "with -perf: exit nonzero unless the float32 backend beats float64 (kernels and end-to-end)")
		prec     = flag.String("precision", "float64", "inference numeric backend: float64 (bit-exact reference) or float32 (faster, tolerance-tested)")
		metricsF = flag.Bool("metrics", false, "print the per-stage cost breakdown of one test-set extraction (next to BENCH JSON) and exit")
		metricsO = flag.String("metrics-out", "", "write the per-stage cost breakdown as JSON to this file and exit (combines with -metrics)")
		traceOut = flag.String("trace-out", "", "record spans in the flight recorder and write them to this file on exit")
		traceFmt = flag.String("trace-format", "otif", "trace file format for -trace-out: otif (span JSON) or chrome (Perfetto-loadable trace events)")
		traceCap = flag.Int("trace-spans", 0, "flight-recorder span capacity for -trace-out (0 = default); oldest spans are overwritten when full")
	)
	flag.Parse()
	parallel.SetWorkers(*nworkers)
	video.SetCacheBudget(int64(*cacheMB) << 20)
	video.SetPrefetchDepth(*prefetch)
	if p, err := nn.ParsePrecision(*prec); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(2)
	} else {
		nn.SetPrecision(p)
	}
	if *traceFmt != "otif" && *traceFmt != "chrome" {
		fmt.Fprintf(os.Stderr, "benchtables: bad -trace-format %q (want otif or chrome)\n", *traceFmt)
		os.Exit(2)
	}
	if *traceOut != "" {
		obs.EnableTracing(*traceCap)
		defer func() {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchtables:", err)
				return
			}
			defer f.Close()
			rec := obs.CurrentRecorder()
			var werr error
			if *traceFmt == "chrome" {
				werr = rec.WriteChrome(f)
			} else {
				werr = rec.WriteJSON(f)
			}
			if werr != nil {
				fmt.Fprintln(os.Stderr, "benchtables:", werr)
				return
			}
			fmt.Printf("wrote span trace (%s format) to %s\n", *traceFmt, *traceOut)
		}()
	}

	spec := dataset.SetSpec{Clips: *clips, ClipSeconds: *seconds}
	suite := bench.NewSuite(spec, *seed)
	var names []string
	if *datasets != "" {
		names = strings.Split(*datasets, ",")
	}

	if *metricsF || *metricsO != "" {
		ds := "caldot1"
		if len(names) > 0 {
			ds = names[0]
		}
		if *metricsF {
			if err := suite.Metrics(os.Stdout, ds); err != nil {
				fmt.Fprintln(os.Stderr, "benchtables:", err)
				os.Exit(1)
			}
		}
		if *metricsO != "" {
			f, err := os.Create(*metricsO)
			if err != nil {
				fmt.Fprintln(os.Stderr, "benchtables:", err)
				os.Exit(1)
			}
			if err := suite.WriteMetricsJSON(f, ds); err != nil {
				f.Close()
				fmt.Fprintln(os.Stderr, "benchtables:", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Println("wrote metrics report to", *metricsO)
		}
		return
	}

	if *perfOut != "" {
		ds := "caldot1"
		if len(names) > 0 {
			ds = names[0]
		}
		rep, err := suite.PerfData(ds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		f, err := os.Create(*perfOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Println("wrote performance report to", *perfOut)
		if *perfGate {
			if err := bench.GatePerf(rep); err != nil {
				fmt.Fprintln(os.Stderr, "benchtables:", err)
				os.Exit(1)
			}
			fmt.Println("perf gate passed: float32 backend beats float64")
		}
		return
	}

	run := func(what string) error {
		switch what {
		case "2":
			_, err := suite.Table2(os.Stdout, names)
			return err
		case "3":
			_, err := suite.Table3(os.Stdout, names)
			return err
		case "4":
			_, err := suite.Table4(os.Stdout, names)
			return err
		case "validate":
			suite.Validate(os.Stdout)
			return nil
		case "variable":
			ds := "caldot1"
			if len(names) > 0 {
				ds = names[0]
			}
			_, err := suite.VariableGap(os.Stdout, ds)
			return err
		case "5":
			_, err := suite.Figure5(os.Stdout, names)
			return err
		case "6":
			ds := "caldot1"
			if len(names) > 0 {
				ds = names[0]
			}
			_, err := suite.Figure6(os.Stdout, ds)
			return err
		case "7":
			ds := "caldot1"
			if len(names) > 0 {
				ds = names[0]
			}
			_, _, err := suite.Figure7(os.Stdout, ds)
			return err
		default:
			return fmt.Errorf("unknown table/figure %q", what)
		}
	}

	var work []string
	if *all {
		work = []string{"2", "5", "3", "6", "4", "7", "variable", "validate"}
	} else {
		if *table != "" {
			work = append(work, *table)
		}
		if *figure != "" {
			work = append(work, *figure)
		}
	}
	if len(work) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	for i, whatItem := range work {
		if i > 0 {
			fmt.Println()
		}
		if err := run(whatItem); err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
			os.Exit(1)
		}
	}
}
