// Command otifd serves the OTIF pipeline as a long-running daemon: it
// trains and tunes one dataset in the background, then exposes the
// standard operational surface over HTTP —
//
//	GET  /metrics               Prometheus text exposition of the registry
//	GET  /healthz               liveness
//	GET  /readyz                readiness (503 until train+tune finish)
//	GET  /jobs                  job records (JSON)
//	POST /jobs                  submit {"kind":"tune"|"extract"|"stream","params":{...}}
//	GET  /jobs/{id}             one job record
//	GET  /jobs/{id}/events      live job progress (SSE)
//	POST /jobs/{id}/cancel      cooperative cancellation
//	GET  /v1/datasets           registered datasets + segment manifests
//	GET  /v1/query/count        indexed track queries over the selected
//	GET  /v1/query/breakdown    dataset (?dataset=, default the daemon's
//	GET  /v1/query/limit        own): counts, path breakdown, frame-level
//	POST /v1/query/dwell        limit queries, dwell times (503 until loaded)
//	GET  /v1/streams            streaming ingest status (JSON)
//	GET  /v1/debug/trace        flight-recorder spans (?format=otif|chrome)
//	GET  /v1/debug/slow         slowest query requests with span subtrees
//	GET  /v1/debug/bundle       one-shot tar.gz post-mortem artifact
//	GET  /v1/debug/vars         expvar
//	     /v1/debug/pprof/*      CPU/heap/goroutine profiling
//
// The pre-versioning routes (/query/*, /streams, /debug/*) still answer,
// marked with a Deprecation header pointing at their /v1 successors.
//
// The flight recorder is on by default: a fixed-capacity ring of spans
// (-trace-spans, default 16384) overwrites oldest-first, so the daemon
// always holds its most recent window of activity under bounded memory.
// -trace-out writes the retained spans to a file on graceful shutdown in
// the -trace-format of choice; GET /debug/trace serves the same data
// live, and format=chrome loads directly in Perfetto.
//
// The query endpoints answer from the indexed track store. Tracks come
// from a successful extract job, immediately at startup from a stored
// track file (-tracks, in which case queries work before the pipeline
// finishes training), or incrementally from a running stream job: while
// streaming ingest is active, /query/* answers from the live store's
// latest immutable snapshot, so results grow clip by clip without ever
// exposing a torn index.
//
//	otifd -dataset caldot1                        # default address :8080
//	otifd -addr 127.0.0.1:0 -clips 2 -seconds 2   # tiny instance, random port
//	otifd -tracks caldot1.tracks                  # serve queries from a stored file
//	otifd -segments-dir ./segs                    # replica over shipped segment files
//	otifd -stream -stream-cameras 2               # stream 2 simulated cameras once ready
//	otifd -log json -log-level debug              # structured logs on stderr
//
// Scraping, streaming and logging never change pipeline results:
// extraction runtimes and tuning curves are bit-identical with the
// daemon's surface active or idle.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"otif"
	"otif/internal/obs"
	"otif/internal/query"
	"otif/internal/serve"
	"otif/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		name     = flag.String("dataset", "caldot1", "dataset name")
		clips    = flag.Int("clips", 0, "clips per set (0 = default)")
		seconds  = flag.Float64("seconds", 0, "seconds per clip (0 = default)")
		seed     = flag.Int64("seed", 7, "sampling seed")
		nwork    = flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS, 1 = serial); results are identical at any setting")
		cacheMB  = flag.Int("cache-mb", 64, "frame cache budget in MiB (<= 0 disables); results are identical at any setting")
		prefetch = flag.Int("prefetch", otif.Prefetch(), "decode-ahead depth in frames (<= 0 disables); results are identical at any setting")
		prec     = flag.String("precision", "float64", "inference numeric backend: float64 (bit-exact reference) or float32 (faster, tolerance-tested)")
		logMode  = flag.String("log", "text", "structured log format: off, text, json")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn, error")
		ringCap  = flag.Int("events", 256, "buffered progress events retained per job")
		tracksF  = flag.String("tracks", "", "serve /v1/query/* from this stored track file at startup")
		segsDir  = flag.String("segments-dir", "", "serve /v1/query/* from the segment files (*.otifseg) in this directory; each dataset found becomes a registry entry")
		traceCap = flag.Int("trace-spans", obs.DefaultRecorderSpans, "flight-recorder span capacity (<= 0 disables tracing); oldest spans are overwritten when full")
		traceOut = flag.String("trace-out", "", "write the flight recorder's spans to this file on graceful shutdown")
		traceFmt = flag.String("trace-format", "otif", "trace format for -trace-out: otif (span JSON) or chrome (Perfetto-loadable trace events)")
		slowK    = flag.Int("slow-requests", serve.DefaultSlowRequests, "slowest /query/* requests retained for GET /debug/slow")

		stream         = flag.Bool("stream", false, "start streaming ingest once the pipeline is ready")
		streamCams     = flag.Int("stream-cameras", 2, "simulated camera count for -stream")
		streamClips    = flag.Int("stream-clips", 0, "clips per camera for -stream (0 = unbounded)")
		streamInterval = flag.Duration("stream-interval", 0, "per-camera clip emission interval for -stream (0 = as fast as backpressure allows)")
		streamQueue    = flag.Int("stream-queue", 0, "shared ingest queue depth (0 = twice the worker count)")
		streamDrop     = flag.Bool("stream-drop", false, "shed clips instead of blocking cameras when the ingest queue is full")
	)
	flag.Parse()
	otif.SetParallelism(*nwork)
	otif.SetCacheMB(*cacheMB)
	otif.SetPrefetch(*prefetch)
	if err := otif.SetPrecision(*prec); err != nil {
		fmt.Fprintln(os.Stderr, "otifd:", err)
		os.Exit(2)
	}
	if *traceFmt != "otif" && *traceFmt != "chrome" {
		fmt.Fprintf(os.Stderr, "otifd: bad -trace-format %q (want otif or chrome)\n", *traceFmt)
		os.Exit(2)
	}
	// The flight recorder is always-on by default: span recording is cheap
	// (a ring-slot write under a sharded mutex) and the ring bounds memory,
	// so a live daemon can always answer /debug/trace.
	if *traceCap > 0 {
		otif.EnableTracing(*traceCap)
	}
	logger, err := buildLogger(*logMode, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "otifd:", err)
		os.Exit(2)
	}
	otif.SetLogger(logger)
	logf := logger
	if logf == nil {
		logf = slog.New(slog.NewTextHandler(io.Discard, nil))
	}

	d := &daemon{}
	if *tracksF != "" {
		// The v2 track format is self-describing, so the file serves
		// queries with no dataset or geometry arguments — and before the
		// pipeline finishes training.
		f, err := os.Open(*tracksF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "otifd:", err)
			os.Exit(1)
		}
		ts, err := otif.ReadTrackSet(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "otifd:", err)
			os.Exit(1)
		}
		d.tracks.Store(ts)
		logf.Info("otifd: tracks loaded", "file", *tracksF, "dataset", ts.Dataset, "clips", len(ts.PerClip))
	}
	// The dataset registry the ?dataset= selector resolves against. The
	// daemon's own dataset is the default entry, answered through the
	// hot-swap chain (stream snapshot → published tracks → shipped
	// segments); every other dataset found in -segments-dir registers as a
	// static shard set under its own name.
	datasets := store.NewRegistry()
	datasets.Register(*name, store.ProviderFunc(d.snapshot))
	if *segsDir != "" {
		shards, err := store.OpenSegmentsDir(*segsDir, store.NewCache())
		if err != nil {
			fmt.Fprintln(os.Stderr, "otifd:", err)
			os.Exit(1)
		}
		for ds, sh := range shards {
			if ds == *name {
				d.shards.Store(sh)
			} else {
				datasets.Register(ds, sh)
			}
			logf.Info("otifd: segments loaded", "dataset", ds, "segments", len(sh.Segments()), "clips", sh.Clips())
		}
	}
	mgr := serve.NewManager(*ringCap)
	mgr.Register("tune", d.runTune)
	mgr.Register("extract", d.runExtract)
	mgr.Register("stream", d.runStream)
	srv := &serve.Server{
		Manager: mgr,
		Ready:   d.ready.Load,
		Queries: &serve.QueryAPI{Datasets: datasets, Movements: d.movements},
		Streams: d.streams,
		SlowK:   *slowK,
		// The effective flag values, for the debug bundle's config.json.
		Config: func() map[string]string {
			m := map[string]string{}
			flag.VisitAll(func(f *flag.Flag) { m[f.Name] = f.Value.String() })
			return m
		},
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "otifd:", err)
		os.Exit(1)
	}
	// The parse-friendly line smoke tests and scripts key on; the chosen
	// port matters when -addr ends in :0.
	fmt.Printf("otifd: listening on http://%s\n", ln.Addr())
	logf.Info("otifd: serving", "addr", ln.Addr().String(), "dataset", *name)

	// Train and tune in the background; /healthz answers immediately,
	// /readyz flips once the pipeline can take jobs.
	go func() {
		start := time.Now()
		pipe, err := otif.OpenWith(*name,
			otif.WithSeed(*seed), otif.WithClips(*clips), otif.WithClipSeconds(*seconds),
			otif.WithProgress(d.relayProgress))
		if err == nil {
			pipe.Train()
			d.mu.Lock()
			d.pipe = pipe
			d.curve, err = pipe.Tune()
			d.mu.Unlock()
		}
		if err != nil {
			logf.Error("otifd: startup failed", "error", err)
			fmt.Fprintln(os.Stderr, "otifd:", err)
			os.Exit(1)
		}
		d.ready.Store(true)
		logf.Info("otifd: ready", "dataset", *name, "startup", time.Since(start).Round(time.Millisecond).String())
		if *stream {
			// -stream runs through the job manager so /jobs and the SSE
			// event stream cover it like any submitted stream job.
			job, err := mgr.Submit("stream", map[string]string{
				"cameras":  strconv.Itoa(*streamCams),
				"clips":    strconv.Itoa(*streamClips),
				"interval": streamInterval.String(),
				"queue":    strconv.Itoa(*streamQueue),
				"drop":     strconv.FormatBool(*streamDrop),
			})
			if err != nil {
				logf.Error("otifd: stream start failed", "error", err)
				return
			}
			logf.Info("otifd: streaming", "job", job.ID(), "cameras", *streamCams)
		}
	}()

	httpSrv := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "otifd:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		logf.Info("otifd: shutting down")
		mgr.Close() // cancel running jobs, wait for their goroutines
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			httpSrv.Close()
		}
		if *traceOut != "" {
			if err := writeTraceFile(*traceOut, *traceFmt); err != nil {
				fmt.Fprintln(os.Stderr, "otifd:", err)
				os.Exit(1)
			}
			logf.Info("otifd: trace written", "file", *traceOut, "format", *traceFmt)
		}
	}
}

// writeTraceFile dumps the flight recorder's retained spans on graceful
// shutdown in the selected format.
func writeTraceFile(path, format string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if format == "chrome" {
		err = otif.WriteChromeTrace(f)
	} else {
		err = otif.WriteTrace(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// daemon owns the pipeline behind the job runners. mu serializes
// pipeline operations (tune and extract share trained state); relay
// routes the pipeline's progress events to whichever job is running.
type daemon struct {
	mu    sync.Mutex
	pipe  *otif.Pipeline
	curve []otif.Point

	relay  atomic.Pointer[obs.Progress]
	ready  atomic.Bool
	tracks atomic.Pointer[otif.TrackSet]
	// shards holds the primary dataset's shard set loaded from
	// -segments-dir (lowest-priority source behind streams and tracks).
	shards atomic.Pointer[store.Sharded]

	// session is the active streaming ingest, nil when idle; streaming
	// holds the single-stream gate (at most one stream job runs at once).
	session   atomic.Pointer[otif.IngestSession]
	streaming atomic.Bool
}

// snapshot exposes the current track store for the daemon's primary
// dataset. While a stream job runs, queries answer from the live store's
// latest snapshot — each snapshot is immutable, so a query concurrent
// with clip publication never observes a torn index. Otherwise the last
// published track set serves (an extract job's output, a -tracks file, or
// the -segments-dir shard set for this dataset). A nil return means "not
// loaded yet" (the query endpoints answer 503).
func (d *daemon) snapshot() store.Querier {
	if s := d.session.Load(); s != nil {
		if snap := s.Store(); snap.Clips() > 0 {
			return snap
		}
	}
	if ts := d.tracks.Load(); ts != nil {
		return ts.Index()
	}
	if sh := d.shards.Load(); sh != nil {
		return sh
	}
	return nil
}

// streams reports the active ingest session's stats for GET /streams.
func (d *daemon) streams() (otif.IngestStats, bool) {
	if s := d.session.Load(); s != nil {
		return s.Stats(), true
	}
	return otif.IngestStats{}, false
}

// movements exposes the dataset's labeled movements for /query/breakdown
// once the pipeline is up (a -tracks file alone carries no movements).
func (d *daemon) movements() []query.Movement {
	if !d.ready.Load() {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pipe == nil {
		return nil
	}
	return d.pipe.Movements()
}

func (d *daemon) relayProgress(e obs.Event) {
	if p := d.relay.Load(); p != nil {
		(*p)(e)
	}
}

// acquire locks the pipeline for one job and routes progress to it.
func (d *daemon) acquire(progress obs.Progress) (release func(), err error) {
	if !d.ready.Load() {
		return nil, errors.New("otifd: pipeline not ready (training or tuning still running)")
	}
	d.mu.Lock()
	d.relay.Store(&progress)
	return func() {
		d.relay.Store(nil)
		d.mu.Unlock()
	}, nil
}

// runTune re-runs the greedy joint tuner and replaces the daemon's
// speed-accuracy curve.
func (d *daemon) runTune(ctx context.Context, job *serve.Job, progress obs.Progress) (any, error) {
	release, err := d.acquire(progress)
	if err != nil {
		return nil, err
	}
	defer release()
	curve, err := d.pipe.TuneContext(ctx)
	if err != nil {
		return nil, err
	}
	d.curve = curve
	return map[string]any{"points": len(curve)}, nil
}

// runExtract extracts one clip set under the configuration picked from
// the current curve. Params: "set" (train|val|test, default test) and
// "tolerance" (accuracy tolerance for the pick, default 0.05).
func (d *daemon) runExtract(ctx context.Context, job *serve.Job, progress obs.Progress) (any, error) {
	v := job.View()
	set := otif.SetName(v.Params["set"])
	if set == "" {
		set = otif.Test
	}
	tol := 0.05
	if s := v.Params["tolerance"]; s != "" {
		var err error
		if tol, err = strconv.ParseFloat(s, 64); err != nil {
			return nil, fmt.Errorf("otifd: bad tolerance %q: %w", s, err)
		}
	}
	release, err := d.acquire(progress)
	if err != nil {
		return nil, err
	}
	defer release()
	pick, err := otif.PickFastestWithin(d.curve, tol)
	if err != nil {
		return nil, err
	}
	ts, err := d.pipe.ExtractContext(ctx, pick.Cfg, set)
	if err != nil {
		return nil, err
	}
	acc, err := d.pipe.Accuracy(ts, set)
	if err != nil {
		return nil, err
	}
	// Publish the fresh tracks to the /query endpoints.
	d.tracks.Store(ts)
	return map[string]any{
		"set":      string(set),
		"config":   fmt.Sprintf("%v", pick.Cfg),
		"clips":    len(ts.PerClip),
		"runtime":  ts.Runtime,
		"accuracy": acc,
	}, nil
}

// runStream runs one streaming ingest session until its cameras are
// exhausted or the job is canceled. Unlike tune and extract it does not
// hold the pipeline mutex: ingest only reads trained state, so tune and
// extract jobs stay submittable while a stream runs. Progress events
// (one per published clip) flow to the job's SSE stream. Params:
// "cameras", "clips" (per camera, 0 = unbounded), "interval" (Go
// duration), "queue" (depth, 0 = default), "drop" (true sheds clips when
// the queue is full), "seconds" (clip duration, 0 = dataset default).
func (d *daemon) runStream(ctx context.Context, job *serve.Job, progress obs.Progress) (any, error) {
	if !d.ready.Load() {
		return nil, errors.New("otifd: pipeline not ready (training or tuning still running)")
	}
	if !d.streaming.CompareAndSwap(false, true) {
		return nil, errors.New("otifd: a stream job is already running")
	}
	defer d.streaming.Store(false)
	d.mu.Lock()
	pipe := d.pipe
	d.mu.Unlock()

	opts := []otif.IngestOption{otif.WithStreamProgress(progress)}
	v := job.View()
	atoi := func(key string) (int, error) {
		s := v.Params[key]
		if s == "" {
			return 0, nil
		}
		n, err := strconv.Atoi(s)
		if err != nil {
			return 0, fmt.Errorf("otifd: bad %s %q: %w", key, s, err)
		}
		return n, nil
	}
	cams, err := atoi("cameras")
	if err != nil {
		return nil, err
	}
	if cams > 0 {
		opts = append(opts, otif.WithCameras(cams))
	}
	if n, err := atoi("clips"); err != nil {
		return nil, err
	} else if n > 0 {
		opts = append(opts, otif.WithCameraClips(n))
	}
	if n, err := atoi("queue"); err != nil {
		return nil, err
	} else if n > 0 {
		opts = append(opts, otif.WithQueueDepth(n))
	}
	if s := v.Params["interval"]; s != "" {
		iv, err := time.ParseDuration(s)
		if err != nil {
			return nil, fmt.Errorf("otifd: bad interval %q: %w", s, err)
		}
		opts = append(opts, otif.WithStreamInterval(iv))
	}
	if s := v.Params["seconds"]; s != "" {
		secs, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("otifd: bad seconds %q: %w", s, err)
		}
		opts = append(opts, otif.WithStreamClipSeconds(secs))
	}
	if v.Params["drop"] == "true" {
		opts = append(opts, otif.WithDropWhenFull(true))
	}

	sess, err := pipe.Ingest(ctx, opts...)
	if err != nil {
		return nil, err
	}
	d.session.Store(sess)
	waitErr := sess.Wait()
	st := sess.Stats()
	if st.ClipsIngested > 0 {
		// Keep the streamed tracks queryable after the session ends.
		d.tracks.Store(sess.Tracks())
	}
	d.session.Store(nil)
	if waitErr != nil && !errors.Is(waitErr, context.Canceled) {
		return nil, waitErr
	}
	return map[string]any{
		"clips":   st.ClipsIngested,
		"dropped": st.ClipsDropped,
		"runtime": st.Runtime,
	}, nil
}

// buildLogger constructs the slog logger selected by -log/-log-level;
// "off" returns nil (logging disabled process-wide).
func buildLogger(mode, level string) (*slog.Logger, error) {
	if mode == "off" {
		return nil, nil
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch mode {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log %q (want off, text or json)", mode)
	}
}
