// Command otifd serves the OTIF pipeline as a long-running daemon: it
// trains and tunes one dataset in the background, then exposes the
// standard operational surface over HTTP —
//
//	GET  /metrics               Prometheus text exposition of the registry
//	GET  /healthz               liveness
//	GET  /readyz                readiness (503 until train+tune finish)
//	GET  /jobs                  job records (JSON)
//	POST /jobs                  submit {"kind":"tune"|"extract","params":{...}}
//	GET  /jobs/{id}             one job record
//	GET  /jobs/{id}/events      live job progress (SSE)
//	POST /jobs/{id}/cancel      cooperative cancellation
//	GET  /query/count           indexed track queries over the current
//	GET  /query/breakdown       track set: counts, path breakdown,
//	GET  /query/limit           frame-level limit queries and dwell
//	POST /query/dwell           times (503 until tracks are loaded)
//	GET  /debug/vars            expvar
//	     /debug/pprof/*         CPU/heap/goroutine profiling
//
// The query endpoints answer from the indexed track store. Tracks come
// from a successful extract job, or immediately at startup from a stored
// track file (-tracks), in which case queries work before the pipeline
// finishes training.
//
//	otifd -dataset caldot1                        # default address :8080
//	otifd -addr 127.0.0.1:0 -clips 2 -seconds 2   # tiny instance, random port
//	otifd -tracks caldot1.tracks                  # serve queries from a stored file
//	otifd -log json -log-level debug              # structured logs on stderr
//
// Scraping, streaming and logging never change pipeline results:
// extraction runtimes and tuning curves are bit-identical with the
// daemon's surface active or idle.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"otif"
	"otif/internal/obs"
	"otif/internal/query"
	"otif/internal/serve"
	"otif/internal/store"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		name     = flag.String("dataset", "caldot1", "dataset name")
		clips    = flag.Int("clips", 0, "clips per set (0 = default)")
		seconds  = flag.Float64("seconds", 0, "seconds per clip (0 = default)")
		seed     = flag.Int64("seed", 7, "sampling seed")
		nwork    = flag.Int("parallel", 0, "worker count (0 = GOMAXPROCS, 1 = serial); results are identical at any setting")
		cacheMB  = flag.Int("cache-mb", 64, "frame cache budget in MiB (<= 0 disables); results are identical at any setting")
		prefetch = flag.Int("prefetch", otif.Prefetch(), "decode-ahead depth in frames (<= 0 disables); results are identical at any setting")
		prec     = flag.String("precision", "float64", "inference numeric backend: float64 (bit-exact reference) or float32 (faster, tolerance-tested)")
		logMode  = flag.String("log", "text", "structured log format: off, text, json")
		logLevel = flag.String("log-level", "info", "log level: debug, info, warn, error")
		ringCap  = flag.Int("events", 256, "buffered progress events retained per job")
		tracksF  = flag.String("tracks", "", "serve /query/* from this stored track file at startup")
	)
	flag.Parse()
	otif.SetParallelism(*nwork)
	otif.SetCacheMB(*cacheMB)
	otif.SetPrefetch(*prefetch)
	if err := otif.SetPrecision(*prec); err != nil {
		fmt.Fprintln(os.Stderr, "otifd:", err)
		os.Exit(2)
	}
	logger, err := buildLogger(*logMode, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, "otifd:", err)
		os.Exit(2)
	}
	otif.SetLogger(logger)
	logf := logger
	if logf == nil {
		logf = slog.New(slog.NewTextHandler(io.Discard, nil))
	}

	d := &daemon{}
	if *tracksF != "" {
		// The v2 track format is self-describing, so the file serves
		// queries with no dataset or geometry arguments — and before the
		// pipeline finishes training.
		f, err := os.Open(*tracksF)
		if err != nil {
			fmt.Fprintln(os.Stderr, "otifd:", err)
			os.Exit(1)
		}
		ts, err := otif.ReadTrackSet(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "otifd:", err)
			os.Exit(1)
		}
		d.tracks.Store(ts)
		logf.Info("otifd: tracks loaded", "file", *tracksF, "dataset", ts.Dataset, "clips", len(ts.PerClip))
	}
	mgr := serve.NewManager(*ringCap)
	mgr.Register("tune", d.runTune)
	mgr.Register("extract", d.runExtract)
	srv := &serve.Server{
		Manager: mgr,
		Ready:   d.ready.Load,
		Queries: &serve.QueryAPI{Store: d.store, Movements: d.movements},
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "otifd:", err)
		os.Exit(1)
	}
	// The parse-friendly line smoke tests and scripts key on; the chosen
	// port matters when -addr ends in :0.
	fmt.Printf("otifd: listening on http://%s\n", ln.Addr())
	logf.Info("otifd: serving", "addr", ln.Addr().String(), "dataset", *name)

	// Train and tune in the background; /healthz answers immediately,
	// /readyz flips once the pipeline can take jobs.
	go func() {
		start := time.Now()
		pipe, err := otif.OpenWith(*name,
			otif.WithSeed(*seed), otif.WithClips(*clips), otif.WithClipSeconds(*seconds),
			otif.WithProgress(d.relayProgress))
		if err == nil {
			pipe.Train()
			d.mu.Lock()
			d.pipe = pipe
			d.curve, err = pipe.Tune()
			d.mu.Unlock()
		}
		if err != nil {
			logf.Error("otifd: startup failed", "error", err)
			fmt.Fprintln(os.Stderr, "otifd:", err)
			os.Exit(1)
		}
		d.ready.Store(true)
		logf.Info("otifd: ready", "dataset", *name, "startup", time.Since(start).Round(time.Millisecond).String())
	}()

	httpSrv := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	select {
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "otifd:", err)
			os.Exit(1)
		}
	case <-ctx.Done():
		logf.Info("otifd: shutting down")
		mgr.Close() // cancel running jobs, wait for their goroutines
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			httpSrv.Close()
		}
	}
}

// daemon owns the pipeline behind the job runners. mu serializes
// pipeline operations (tune and extract share trained state); relay
// routes the pipeline's progress events to whichever job is running.
type daemon struct {
	mu    sync.Mutex
	pipe  *otif.Pipeline
	curve []otif.Point

	relay  atomic.Pointer[obs.Progress]
	ready  atomic.Bool
	tracks atomic.Pointer[otif.TrackSet]
}

// store exposes the current track set's index to the /query endpoints.
// It swaps atomically when an extract job completes, so queries always
// see a complete, immutable track set.
func (d *daemon) store() *store.Store {
	if ts := d.tracks.Load(); ts != nil {
		return ts.Index()
	}
	return nil
}

// movements exposes the dataset's labeled movements for /query/breakdown
// once the pipeline is up (a -tracks file alone carries no movements).
func (d *daemon) movements() []query.Movement {
	if !d.ready.Load() {
		return nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pipe == nil {
		return nil
	}
	return d.pipe.Movements()
}

func (d *daemon) relayProgress(e obs.Event) {
	if p := d.relay.Load(); p != nil {
		(*p)(e)
	}
}

// acquire locks the pipeline for one job and routes progress to it.
func (d *daemon) acquire(progress obs.Progress) (release func(), err error) {
	if !d.ready.Load() {
		return nil, errors.New("otifd: pipeline not ready (training or tuning still running)")
	}
	d.mu.Lock()
	d.relay.Store(&progress)
	return func() {
		d.relay.Store(nil)
		d.mu.Unlock()
	}, nil
}

// runTune re-runs the greedy joint tuner and replaces the daemon's
// speed-accuracy curve.
func (d *daemon) runTune(ctx context.Context, job *serve.Job, progress obs.Progress) (any, error) {
	release, err := d.acquire(progress)
	if err != nil {
		return nil, err
	}
	defer release()
	curve, err := d.pipe.TuneContext(ctx)
	if err != nil {
		return nil, err
	}
	d.curve = curve
	return map[string]any{"points": len(curve)}, nil
}

// runExtract extracts one clip set under the configuration picked from
// the current curve. Params: "set" (train|val|test, default test) and
// "tolerance" (accuracy tolerance for the pick, default 0.05).
func (d *daemon) runExtract(ctx context.Context, job *serve.Job, progress obs.Progress) (any, error) {
	v := job.View()
	set := otif.SetName(v.Params["set"])
	if set == "" {
		set = otif.Test
	}
	tol := 0.05
	if s := v.Params["tolerance"]; s != "" {
		var err error
		if tol, err = strconv.ParseFloat(s, 64); err != nil {
			return nil, fmt.Errorf("otifd: bad tolerance %q: %w", s, err)
		}
	}
	release, err := d.acquire(progress)
	if err != nil {
		return nil, err
	}
	defer release()
	pick, err := otif.PickFastestWithin(d.curve, tol)
	if err != nil {
		return nil, err
	}
	ts, err := d.pipe.ExtractContext(ctx, pick.Cfg, set)
	if err != nil {
		return nil, err
	}
	acc, err := d.pipe.Accuracy(ts, set)
	if err != nil {
		return nil, err
	}
	// Publish the fresh tracks to the /query endpoints.
	d.tracks.Store(ts)
	return map[string]any{
		"set":      string(set),
		"config":   fmt.Sprintf("%v", pick.Cfg),
		"clips":    len(ts.PerClip),
		"runtime":  ts.Runtime,
		"accuracy": acc,
	}, nil
}

// buildLogger constructs the slog logger selected by -log/-log-level;
// "off" returns nil (logging disabled process-wide).
func buildLogger(mode, level string) (*slog.Logger, error) {
	if mode == "off" {
		return nil, nil
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch mode {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log %q (want off, text or json)", mode)
	}
}
