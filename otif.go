package otif

import (
	"context"
	"fmt"

	"otif/internal/core"
	"otif/internal/dataset"
	"otif/internal/nn"
	"otif/internal/obs"
	"otif/internal/parallel"
	"otif/internal/query"
	"otif/internal/tuner"
	"otif/internal/video"
)

// SetParallelism fixes the worker count used by clip execution, tuning and
// the benchmark harness. n <= 0 restores the default (GOMAXPROCS). Results
// are bit-for-bit identical at any worker count; SetParallelism(1) forces
// the serial reference path.
func SetParallelism(n int) { parallel.SetWorkers(n) }

// Parallelism reports the current worker count.
func Parallelism() int { return parallel.Workers() }

// SetCacheMB sets the byte budget (in MiB) of the process-wide frame cache
// that serves repeated downsamples and clip-frame reads on the per-frame
// hot path. mb <= 0 disables caching. The cache only affects wall-clock
// speed: extracted tracks, simulated runtimes and tuning curves are
// bit-for-bit identical at any budget, including zero. The default is
// 64 MiB.
func SetCacheMB(mb int) { video.SetCacheBudget(int64(mb) << 20) }

// CacheStats reports the process-wide frame cache counters (all zero when
// caching is disabled).
func CacheStats() video.CacheStats { return video.GlobalCacheStats() }

// SetPrefetch sets the decode-ahead depth of fixed-gap clip readers: up to
// k sampled frames are decoded ahead of the consumer on a background
// goroutine. k <= 0 disables prefetching (synchronous decode). Like the
// cache and worker count, prefetch only affects wall-clock speed —
// extracted tracks, simulated runtimes and tuning curves are bit-for-bit
// identical at any depth. The default is video.DefaultPrefetchDepth.
func SetPrefetch(k int) { video.SetPrefetchDepth(k) }

// Prefetch reports the current decode-ahead depth (0 when disabled).
func Prefetch() int { return video.PrefetchDepth() }

// SetPrecision selects the numeric backend for pipeline inference:
// "float64" (the default — the bit-exact reference, also used by training
// and tuning regardless of this setting) or "float32" (register-blocked
// kernels with trained weights converted once; faster, with accuracy
// within the tolerance DESIGN.md §13 documents and the tests pin). The
// setting takes effect at the next run: each RunClip/RunSet samples it
// once on entry, so runs are never torn by a concurrent change.
func SetPrecision(name string) error {
	p, err := nn.ParsePrecision(name)
	if err != nil {
		return fmt.Errorf("otif: %w", err)
	}
	nn.SetPrecision(p)
	return nil
}

// Precision reports the active numeric backend ("float64" or "float32").
func Precision() string { return nn.ActivePrecision().String() }

// SetName selects one of a pipeline's clip sets.
type SetName string

// The three clip sets sampled from a dataset (§3.1 of the paper).
const (
	Train      SetName = "train"
	Validation SetName = "val"
	Test       SetName = "test"
)

// Options configures Open.
type Options struct {
	// ClipsPerSet and ClipSeconds control the sampled set sizes. Zero
	// values use the library defaults (a scaled-down benchmark size; the
	// paper uses 60 one-minute clips per set).
	ClipsPerSet int
	ClipSeconds float64
	// Seed drives all dataset sampling and model initialization.
	Seed int64
}

// Config is a pipeline parameter configuration theta.
type Config = core.Config

// Point is one point of a speed-accuracy curve: a configuration with its
// validation runtime (simulated seconds) and accuracy.
type Point = tuner.Point

// Pipeline is an OTIF instance bound to one video dataset: it owns the
// trained models and exposes tuning, extraction and querying.
type Pipeline struct {
	sys      *core.System
	metric   core.Metric
	curve    []Point
	progress obs.Progress
}

// Open samples the named dataset (one of Datasets()) and estimates the
// detector background model. Call Train before Tune or Extract. It is
// shorthand for OpenWith(name, WithOptions(opts)).
func Open(name string, opts Options) (*Pipeline, error) {
	return OpenWith(name, WithOptions(opts))
}

// OpenWith is Open with functional options: WithSeed, WithClips,
// WithClipSeconds, WithProgress, a whole Options struct via WithOptions,
// or the performance knobs (WithParallelism, WithCacheMB, WithPrefetch,
// WithPrecision). Knobs delegate to the package Set* functions and apply
// when OpenWith runs; see the package documentation for the precedence
// rule.
func OpenWith(name string, options ...Option) (*Pipeline, error) {
	var c openConfig
	for _, o := range options {
		o.applyOpen(&c)
	}
	for _, k := range c.knobs {
		if err := k(); err != nil {
			return nil, err
		}
	}
	spec := dataset.DefaultSpec
	if c.opts.ClipsPerSet > 0 {
		spec.Clips = c.opts.ClipsPerSet
	}
	if c.opts.ClipSeconds > 0 {
		spec.ClipSeconds = c.opts.ClipSeconds
	}
	seed := c.opts.Seed
	if seed == 0 {
		seed = 7
	}
	ds, err := dataset.Build(name, spec, seed)
	if err != nil {
		return nil, err
	}
	sys := core.NewSystem(ds)
	sys.Progress = c.progress
	return &Pipeline{
		sys:      sys,
		metric:   core.MetricFor(ds),
		progress: c.progress,
	}, nil
}

// Datasets lists the seven supported datasets.
func Datasets() []string { return dataset.Names() }

// Train selects the best-accuracy configuration theta_best on the
// validation set and trains every learned component: the five segmentation
// proxy models, the window-size set, the recurrent and pairwise tracking
// models, and the endpoint refiner.
func (p *Pipeline) Train() Config {
	best, _ := tuner.SelectBest(p.sys, p.metric)
	p.sys.FinishTraining(best, 42)
	return best
}

// Tune runs the greedy joint parameter tuner (§3.5) and returns the
// speed-accuracy curve, slowest configuration first. It returns
// ErrNotTrained if Train (or LoadModels) has not run.
func (p *Pipeline) Tune() ([]Point, error) {
	return p.TuneContext(context.Background())
}

// TuneContext is Tune with cooperative cancellation: the tuner checks ctx
// at iteration boundaries and returns a *PartialError wrapping ctx.Err()
// together with the curve points completed so far.
func (p *Pipeline) TuneContext(ctx context.Context) ([]Point, error) {
	if p.sys.Recurrent == nil {
		return nil, ErrNotTrained
	}
	opts := tuner.DefaultOptions()
	opts.Progress = p.progress
	curve, err := tuner.TuneContext(ctx, p.sys, p.metric, opts)
	p.curve = curve
	return curve, err
}

// Curve returns the most recent tuning curve (nil before Tune).
func (p *Pipeline) Curve() []Point { return p.curve }

// PickFastestWithin returns the fastest point of the curve whose accuracy
// is within tol of the best accuracy on the curve (the paper's Table 2
// selection rule with tol = 0.05). It returns ErrEmptyCurve when the curve
// has no points.
func PickFastestWithin(curve []Point, tol float64) (Point, error) {
	p, ok := tuner.FastestWithin(curve, tol)
	if !ok {
		return Point{}, ErrEmptyCurve
	}
	return p, nil
}

// Extract runs the pipeline under cfg over the chosen clip set and returns
// the extracted tracks together with the simulated execution cost.
func (p *Pipeline) Extract(cfg Config, set SetName) (*TrackSet, error) {
	return p.ExtractContext(context.Background(), cfg, set)
}

// ExtractContext is Extract with cooperative cancellation: clip workers
// check ctx before starting each clip and the pool drains cleanly. A
// canceled extraction returns a *PartialError wrapping ctx.Err() that
// reports how many clips completed.
func (p *Pipeline) ExtractContext(ctx context.Context, cfg Config, set SetName) (*TrackSet, error) {
	clips, err := p.clips(set)
	if err != nil {
		return nil, err
	}
	res, err := p.sys.RunSetContext(ctx, cfg, clips)
	if err != nil {
		return nil, err
	}
	return &TrackSet{
		PerClip: res.PerClip,
		Runtime: res.Runtime,
		Dataset: p.sys.DS.Name,
		ctx:     p.sys.Ctx(),
	}, nil
}

// Accuracy scores a TrackSet extracted from the given set against ground
// truth using the dataset's evaluation metric.
func (p *Pipeline) Accuracy(ts *TrackSet, set SetName) (float64, error) {
	clips, err := p.clips(set)
	if err != nil {
		return 0, err
	}
	if len(clips) != len(ts.PerClip) {
		return 0, fmt.Errorf("otif: track set has %d clips, %s set has %d", len(ts.PerClip), set, len(clips))
	}
	return p.metric.Accuracy(ts.PerClip, clips), nil
}

// Movements returns the dataset's labeled spatial movements (for path
// breakdown queries); nil for datasets evaluated with track counts.
func (p *Pipeline) Movements() []query.Movement {
	return core.MovementsFor(p.sys.DS)
}

// System exposes the underlying trained system for advanced use (the
// benchmark harness and examples that need module-level access).
func (p *Pipeline) System() *core.System { return p.sys }

// Metric exposes the dataset's evaluation metric.
func (p *Pipeline) Metric() core.Metric { return p.metric }

func (p *Pipeline) clips(set SetName) ([]*dataset.ClipTruth, error) {
	switch set {
	case Train:
		return p.sys.DS.Train, nil
	case Validation:
		return p.sys.DS.Val, nil
	case Test:
		return p.sys.DS.Test, nil
	default:
		return nil, fmt.Errorf("otif: unknown set %q", set)
	}
}
