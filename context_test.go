package otif_test

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"otif"
)

// ctxPipe is a small trained pipeline with a swappable progress hook,
// shared by the cancellation tests. The hook indirection lets each test
// install its own cancel trigger without retraining.
var (
	ctxPipe *otif.Pipeline
	ctxHook atomic.Pointer[otif.ProgressFunc]
)

func ctxPipeline(t *testing.T) *otif.Pipeline {
	t.Helper()
	if ctxPipe != nil {
		return ctxPipe
	}
	hook := otif.ProgressFunc(func(e otif.ProgressEvent) {
		if fn := ctxHook.Load(); fn != nil {
			(*fn)(e)
		}
	})
	pipe, err := otif.OpenWith("caldot1",
		otif.WithClips(2), otif.WithClipSeconds(2), otif.WithProgress(hook))
	if err != nil {
		t.Fatal(err)
	}
	pipe.Train()
	ctxPipe = pipe
	return ctxPipe
}

// setHook installs fn as the progress hook and removes it at test end.
func setHook(t *testing.T, fn otif.ProgressFunc) {
	t.Helper()
	ctxHook.Store(&fn)
	t.Cleanup(func() { ctxHook.Store(nil) })
}

func TestExtractContextPreCanceled(t *testing.T) {
	pipe := ctxPipeline(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := pipe.ExtractContext(ctx, pipe.System().Best, otif.Test)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var pe *otif.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *otif.PartialError", err)
	}
	if pe.Stage != "extract" || pe.Done != 0 {
		t.Errorf("partial = %+v, want stage extract, 0 done", pe)
	}
}

func TestExtractContextCancelMidRun(t *testing.T) {
	pipe := ctxPipeline(t)
	otif.SetParallelism(1)
	defer otif.SetParallelism(0)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	setHook(t, func(e otif.ProgressEvent) {
		if e.Kind == otif.EventClip {
			cancel()
		}
	})
	_, err := pipe.ExtractContext(ctx, pipe.System().Best, otif.Test)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var pe *otif.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *otif.PartialError", err)
	}
	// Serial execution cancels after the first clip event: exactly one of
	// the two test clips completed.
	if pe.Done != 1 || pe.Total != 2 {
		t.Errorf("partial progress = %d/%d, want 1/2", pe.Done, pe.Total)
	}
}

func TestExtractContextDrainsWorkers(t *testing.T) {
	pipe := ctxPipeline(t)
	otif.SetParallelism(4)
	defer otif.SetParallelism(0)
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	setHook(t, func(e otif.ProgressEvent) {
		if e.Kind == otif.EventClip {
			cancel()
		}
	})
	if _, err := pipe.ExtractContext(ctx, pipe.System().Best, otif.Test); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// The worker pool must drain: no goroutines may outlive the call.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before {
		t.Errorf("goroutines after canceled extract = %d, want <= %d (worker leak)", got, before)
	}
}

func TestTuneContextCancelMidRun(t *testing.T) {
	pipe := ctxPipeline(t)
	otif.SetParallelism(1)
	defer otif.SetParallelism(0)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	setHook(t, func(e otif.ProgressEvent) {
		if e.Kind == otif.EventTuneIter && e.Iteration == 1 {
			cancel()
		}
	})
	curve, err := pipe.TuneContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	var pe *otif.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %T, want *otif.PartialError", err)
	}
	if pe.Stage != "tune" {
		t.Errorf("stage = %q, want tune", pe.Stage)
	}
	// The cancel fires inside iteration 1; that iteration still completes
	// (cooperative cancellation at iteration boundaries), so the curve
	// holds theta_best plus the first two iterations' picks.
	if pe.Done < 1 || len(curve) < 2 {
		t.Errorf("done = %d, curve = %d points; want partial progress", pe.Done, len(curve))
	}
}

func TestTuneContextPreCanceledAfterTrain(t *testing.T) {
	pipe := ctxPipeline(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := pipe.TuneContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestExtractContextUncanceledMatchesExtract(t *testing.T) {
	pipe := ctxPipeline(t)
	a, err := pipe.Extract(pipe.System().Best, otif.Test)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pipe.ExtractContext(context.Background(), pipe.System().Best, otif.Test)
	if err != nil {
		t.Fatal(err)
	}
	if a.Runtime != b.Runtime {
		t.Errorf("ExtractContext runtime %v != Extract runtime %v", b.Runtime, a.Runtime)
	}
}

func TestProgressEventsDelivered(t *testing.T) {
	pipe := ctxPipeline(t)
	var clips atomic.Int64
	setHook(t, func(e otif.ProgressEvent) {
		if e.Kind == otif.EventClip {
			clips.Add(1)
		}
	})
	if _, err := pipe.Extract(pipe.System().Best, otif.Test); err != nil {
		t.Fatal(err)
	}
	if got := clips.Load(); got != 2 {
		t.Errorf("clip events = %d, want 2 (one per test clip)", got)
	}
}
