package otif

import (
	"io"
	"log/slog"

	"otif/internal/obs"
)

// Metrics returns the process-wide observability registry. Every pipeline
// stage records into it through pre-registered handles: frame, detection,
// proxy and tracker counters, per-op simulated cost totals, and frame-cache
// gauges. Recording is lock-free and allocation-free on the per-frame hot
// path and never changes pipeline results.
func Metrics() *obs.Registry { return obs.Default }

// MetricsSnapshot is a point-in-time, JSON-serializable copy of every
// registered counter, cost, gauge and histogram.
type MetricsSnapshot = obs.MetricsSnapshot

// Snapshot captures the current state of the metrics registry. Integer
// counters and per-op cost totals are deterministic for a given sequence of
// operations at any worker count; cache gauges depend on worker
// interleaving and are observational only.
func Snapshot() MetricsSnapshot { return obs.Default.Snapshot() }

// ResetMetrics zeroes every registered metric while keeping the registered
// handles valid. Bracketing one extraction between ResetMetrics and
// Snapshot yields that extraction's exact per-stage cost breakdown: the
// snapshot's CostTotal() equals the extraction's Runtime bit-for-bit.
func ResetMetrics() { obs.Default.Reset() }

// SetMetricsEnabled turns metric recording on or off process-wide.
// Recording is on by default; disabling it turns every record into a single
// atomic load. Results are bit-identical either way.
func SetMetricsEnabled(on bool) { obs.SetEnabled(on) }

// SetLogger installs a process-wide structured logger (or removes it with
// nil, the default). The pipeline logs only at coarse boundaries — a
// RunSet finishing, a tuner iteration choosing its candidate, an otifd job
// changing state — never per frame, and logging never changes results:
// extraction runtimes and tuning curves are bit-identical with logging
// enabled or disabled. With no logger installed every log site is a single
// atomic load, keeping deterministic benchmarks allocation-free.
func SetLogger(l *slog.Logger) { obs.SetLogger(l) }

// EnableTracing installs a process-wide span tracer capturing up to max
// spans (a cap <= 0 selects a default) and returns it. Tracing is off by
// default; when off, span start/end sites read no clocks and do not
// allocate, keeping deterministic paths clock-free.
func EnableTracing(max int) *obs.Tracer { return obs.EnableTracing(max) }

// DisableTracing removes the process-wide span tracer.
func DisableTracing() { obs.SetTracer(nil) }

// WriteTrace writes the recorded spans of the active tracer as JSON; it is
// a no-op (writing an empty span list) when tracing is disabled.
func WriteTrace(w io.Writer) error {
	t := obs.CurrentTracer()
	if t == nil {
		empty := obs.NewTracer(0)
		return empty.WriteJSON(w)
	}
	return t.WriteJSON(w)
}
