package otif

import (
	"io"
	"log/slog"

	"otif/internal/obs"
)

// Metrics returns the process-wide observability registry. Every pipeline
// stage records into it through pre-registered handles: frame, detection,
// proxy and tracker counters, per-op simulated cost totals, and frame-cache
// gauges. Recording is lock-free and allocation-free on the per-frame hot
// path and never changes pipeline results.
func Metrics() *obs.Registry { return obs.Default }

// MetricsSnapshot is a point-in-time, JSON-serializable copy of every
// registered counter, cost, gauge and histogram.
type MetricsSnapshot = obs.MetricsSnapshot

// Snapshot captures the current state of the metrics registry. Integer
// counters and per-op cost totals are deterministic for a given sequence of
// operations at any worker count; cache gauges depend on worker
// interleaving and are observational only.
func Snapshot() MetricsSnapshot { return obs.Default.Snapshot() }

// ResetMetrics zeroes every registered metric while keeping the registered
// handles valid. Bracketing one extraction between ResetMetrics and
// Snapshot yields that extraction's exact per-stage cost breakdown: the
// snapshot's CostTotal() equals the extraction's Runtime bit-for-bit.
func ResetMetrics() { obs.Default.Reset() }

// SetMetricsEnabled turns metric recording on or off process-wide.
// Recording is on by default; disabling it turns every record into a single
// atomic load. Results are bit-identical either way.
func SetMetricsEnabled(on bool) { obs.SetEnabled(on) }

// SetLogger installs a process-wide structured logger (or removes it with
// nil, the default). The pipeline logs only at coarse boundaries — a
// RunSet finishing, a tuner iteration choosing its candidate, an otifd job
// changing state — never per frame, and logging never changes results:
// extraction runtimes and tuning curves are bit-identical with logging
// enabled or disabled. With no logger installed every log site is a single
// atomic load, keeping deterministic benchmarks allocation-free.
func SetLogger(l *slog.Logger) { obs.SetLogger(l) }

// EnableTracing installs a process-wide flight recorder capturing up to
// max attributed spans (a cap <= 0 selects a default) and returns it. The
// recorder is a fixed-capacity ring that overwrites oldest-first, so a
// long-running process always retains the most recent window of spans
// under bounded memory; ring occupancy and overwritten-span counts are
// exported as trace.* gauges in every metrics snapshot. Tracing is off by
// default in the library (otifd turns it on); when off, span start/end
// sites read no clocks and do not allocate, keeping deterministic paths
// clock-free.
func EnableTracing(max int) *obs.Recorder { return obs.EnableTracing(max) }

// DisableTracing removes the process-wide flight recorder.
func DisableTracing() { obs.SetRecorder(nil) }

// WriteTrace writes the flight recorder's retained spans and ring
// statistics as JSON (the "otif" trace format); with tracing disabled it
// writes an empty span list.
func WriteTrace(w io.Writer) error {
	return obs.CurrentRecorder().WriteJSON(w)
}

// WriteChromeTrace writes the flight recorder's retained spans in Chrome
// trace-event JSON, loadable directly in Perfetto (ui.perfetto.dev) or
// chrome://tracing: one lane per worker or camera, span attributes in
// each event's args. With tracing disabled it writes an empty (but valid)
// trace.
func WriteChromeTrace(w io.Writer) error {
	return obs.CurrentRecorder().WriteChrome(w)
}
