// Package otif is a Go implementation of OTIF ("Efficient Tracker
// Pre-processing over Large Video Datasets", Bastani & Madden, SIGMOD
// 2022): a video pre-processor that extracts all object tracks from large
// video datasets as fast as video query optimizers can answer a single
// query, so that arbitrary detection/track queries afterwards run in
// milliseconds over the stored tracks.
//
// The pipeline integrates three techniques under one joint parameter
// tuner:
//
//   - a segmentation proxy model that finds the regions of each frame that
//     contain objects, so the expensive detector runs only inside small
//     windows drawn from a pre-selected window-size set;
//   - a recurrent reduced-rate tracker that associates detections across
//     large sampling gaps using multi-frame motion context, with endpoint
//     refinement from clustered training tracks;
//   - a greedy tuner that explores detector architecture/resolution, proxy
//     resolution/threshold, and sampling gap to produce a speed-accuracy
//     curve approximating the Pareto frontier.
//
// # Quick start
//
//	pipe, err := otif.Open("caldot1", otif.Options{})
//	if err != nil { ... }
//	pipe.Train()                    // theta_best, proxies, trackers, refiner
//	curve := pipe.Tune()            // speed-accuracy curve on validation set
//	cfg := otif.PickFastestWithin(curve, 0.05)
//	ts := pipe.Extract(cfg.Config, otif.Test)
//	counts := ts.PathBreakdown("car")
//
// GPU inference and real video are replaced by a deterministic simulation
// substrate (see DESIGN.md); all runtimes the library reports are simulated
// V100/Xeon seconds from a calibrated cost model.
package otif
