// Package otif is a Go implementation of OTIF ("Efficient Tracker
// Pre-processing over Large Video Datasets", Bastani & Madden, SIGMOD
// 2022): a video pre-processor that extracts all object tracks from large
// video datasets as fast as video query optimizers can answer a single
// query, so that arbitrary detection/track queries afterwards run in
// milliseconds over the stored tracks.
//
// The pipeline integrates three techniques under one joint parameter
// tuner:
//
//   - a segmentation proxy model that finds the regions of each frame that
//     contain objects, so the expensive detector runs only inside small
//     windows drawn from a pre-selected window-size set;
//   - a recurrent reduced-rate tracker that associates detections across
//     large sampling gaps using multi-frame motion context, with endpoint
//     refinement from clustered training tracks;
//   - a greedy tuner that explores detector architecture/resolution, proxy
//     resolution/threshold, and sampling gap to produce a speed-accuracy
//     curve approximating the Pareto frontier.
//
// # Quick start
//
//	pipe, err := otif.OpenWith("caldot1", otif.WithSeed(7))
//	if err != nil { ... }
//	pipe.Train()                    // theta_best, proxies, trackers, refiner
//	curve, err := pipe.Tune()       // speed-accuracy curve on validation set
//	cfg, err := otif.PickFastestWithin(curve, 0.05)
//	ts, err := pipe.Extract(cfg.Cfg, otif.Test)
//	counts := ts.PathBreakdown("car")
//
// Tune and Extract have context-aware variants (TuneContext,
// ExtractContext) that cancel cooperatively at iteration/clip boundaries
// and report partial progress via *PartialError. Structured progress
// events are available with OpenWith(name, otif.WithProgress(fn)), and
// per-stage metrics via otif.Snapshot() (see DESIGN.md §9).
//
// GPU inference and real video are replaced by a deterministic simulation
// substrate (see DESIGN.md); all runtimes the library reports are simulated
// V100/Xeon seconds from a calibrated cost model.
package otif
