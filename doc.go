// Package otif is a Go implementation of OTIF ("Efficient Tracker
// Pre-processing over Large Video Datasets", Bastani & Madden, SIGMOD
// 2022): a video pre-processor that extracts all object tracks from large
// video datasets as fast as video query optimizers can answer a single
// query, so that arbitrary detection/track queries afterwards run in
// milliseconds over the stored tracks.
//
// The pipeline integrates three techniques under one joint parameter
// tuner:
//
//   - a segmentation proxy model that finds the regions of each frame that
//     contain objects, so the expensive detector runs only inside small
//     windows drawn from a pre-selected window-size set;
//   - a recurrent reduced-rate tracker that associates detections across
//     large sampling gaps using multi-frame motion context, with endpoint
//     refinement from clustered training tracks;
//   - a greedy tuner that explores detector architecture/resolution, proxy
//     resolution/threshold, and sampling gap to produce a speed-accuracy
//     curve approximating the Pareto frontier.
//
// # Quick start
//
//	pipe, err := otif.OpenWith("caldot1", otif.WithSeed(7))
//	if err != nil { ... }
//	pipe.Train()                    // theta_best, proxies, trackers, refiner
//	curve, err := pipe.Tune()       // speed-accuracy curve on validation set
//	cfg, err := otif.PickFastestWithin(curve, 0.05)
//	ts, err := pipe.Extract(cfg.Cfg, otif.Test)
//	counts := ts.PathBreakdown("car")
//
// Tune and Extract have context-aware variants (TuneContext,
// ExtractContext) that cancel cooperatively at iteration/clip boundaries
// and report partial progress via *PartialError. Structured progress
// events are available with OpenWith(name, otif.WithProgress(fn)), and
// per-stage metrics via otif.Snapshot() (see DESIGN.md §9).
//
// Beyond batch extraction, Pipeline.Ingest streams clips from N
// simulated cameras through the trained models into a live indexed
// store whose snapshots are queryable while ingest continues (see
// DESIGN.md §14).
//
// # Performance knobs and precedence
//
// Worker count, frame cache budget, decode-ahead depth and numeric
// precision are process-wide settings with two equivalent spellings: the
// Set* functions (SetParallelism, SetCacheMB, SetPrefetch, SetPrecision
// — what the CLIs call once at startup from their flags) and the
// corresponding functional options (WithParallelism, WithCacheMB,
// WithPrefetch, WithPrecision), which satisfy both Option and
// IngestOption. An option is sugar for its Set* call executed when the
// accepting call (OpenWith or Ingest) runs; there is no per-pipeline
// state, so the most recent setting wins process-wide — a knob passed to
// OpenWith overrides an earlier CLI flag, and a later Set* call
// overrides the option. None of these knobs change results: extracted
// tracks, simulated runtimes and tuning curves are bit-identical at any
// setting, except that SetPrecision("float32") trades bit-exactness for
// speed within a pinned tolerance (DESIGN.md §13).
//
// GPU inference and real video are replaced by a deterministic simulation
// substrate (see DESIGN.md); all runtimes the library reports are simulated
// V100/Xeon seconds from a calibrated cost model.
package otif
