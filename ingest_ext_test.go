package otif_test

import (
	"context"
	"errors"
	"strings"
	"testing"

	"otif"
)

func TestIngestSessionEndToEnd(t *testing.T) {
	pipe, _ := pipeline(t)
	sess, err := pipe.Ingest(context.Background(),
		otif.WithCameras(2), otif.WithCameraClips(2), otif.WithStreamClipSeconds(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Wait(); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	st := sess.Stats()
	if st.ClipsIngested != 4 || st.ClipsDropped != 0 {
		t.Fatalf("stats = %+v, want 4 ingested", st)
	}
	if len(st.Cameras) != 2 || st.Cameras[0].Name != "caldot1-cam0" {
		t.Fatalf("camera stats = %+v", st.Cameras)
	}
	if got := sess.Store().Clips(); got != 4 {
		t.Fatalf("store clips = %d, want 4", got)
	}
	if got := len(sess.Published()); got != 4 {
		t.Fatalf("published log has %d entries, want 4", got)
	}

	ts := sess.Tracks()
	if got := len(ts.CountTracks("car")); got != 4 {
		t.Fatalf("TrackSet has %d clips, want 4", got)
	}
	if ts.Runtime <= 0 {
		t.Error("TrackSet runtime not carried over from session")
	}
	// The TrackSet adopts the live store's already-built index rather than
	// rebuilding it.
	if ts.Index() != sess.Store() {
		t.Error("TrackSet.Index rebuilt the index instead of adopting the live store snapshot")
	}
}

func TestIngestRequiresTraining(t *testing.T) {
	pipe, err := otif.Open("caldot1", otif.Options{ClipsPerSet: 1, ClipSeconds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Ingest(context.Background()); !errors.Is(err, otif.ErrNotTrained) {
		t.Fatalf("Ingest before Train = %v, want ErrNotTrained", err)
	}
}

func TestKnobOptionsOnOpen(t *testing.T) {
	oldPar, oldPre := otif.Parallelism(), otif.Prefetch()
	defer func() {
		otif.SetParallelism(oldPar)
		otif.SetPrefetch(oldPre)
		otif.SetCacheMB(64)
	}()
	if _, err := otif.OpenWith("caldot1",
		otif.WithClips(1), otif.WithClipSeconds(2),
		otif.WithParallelism(2), otif.WithCacheMB(32), otif.WithPrefetch(3),
		otif.WithPrecision("float64")); err != nil {
		t.Fatal(err)
	}
	if got := otif.Parallelism(); got != 2 {
		t.Errorf("Parallelism = %d after WithParallelism(2)", got)
	}
	if got := otif.Prefetch(); got != 3 {
		t.Errorf("Prefetch = %d after WithPrefetch(3)", got)
	}

	_, err := otif.OpenWith("caldot1", otif.WithClips(1), otif.WithClipSeconds(2),
		otif.WithPrecision("float128"))
	if err == nil {
		t.Fatal("WithPrecision with unknown backend must fail OpenWith")
	}
	for _, name := range []string{"float64", "float32"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("precision error %q does not list %q", err, name)
		}
	}
}

func TestKnobOptionsOnIngest(t *testing.T) {
	pipe, _ := pipeline(t)
	if _, err := pipe.Ingest(context.Background(), otif.WithPrecision("bogus")); err == nil {
		t.Fatal("Ingest with unknown precision must fail")
	}
}
