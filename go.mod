module otif

go 1.22
