package otif

import "otif/internal/query"

// TrackQuery is a fluent builder over a TrackSet's indexed store: it
// replaces the sprawl of per-query method signatures with one chain of
// constraints followed by a terminal that picks the result shape.
//
//	counts := ts.Query().Category("car").Count()
//	frames := ts.Query().Category("car").InRegion(poly).MinCount(2).Limit(5).Frames()
//	dwell  := ts.Query().Category("bus").InRegion(junction).Dwell()
//
// Builders are cheap value carriers; each terminal executes one indexed
// query and returns per-clip results in set order, bit-identical to the
// linear-scan implementations. A builder is single-use per terminal call
// but may call several terminals (each re-executes).
type TrackQuery struct {
	ts        *TrackSet
	cat       string
	region    Polygon
	hasRegion bool
	hotRadius float64
	hotN      int
	minCount  int
	limit     int
	minSepSec float64
	movements []Movement
	maxDist   float64
}

// Query starts a query over the track set with defaults: all categories,
// whole frame, at least one object, up to 10 result frames, no minimum
// separation.
func (ts *TrackSet) Query() *TrackQuery {
	return &TrackQuery{ts: ts, minCount: 1, limit: 10}
}

// Category restricts the query to one object category (empty = all).
func (q *TrackQuery) Category(cat string) *TrackQuery {
	q.cat = cat
	return q
}

// InRegion restricts frame matches (Frames) and dwell accounting (Dwell)
// to object centers inside the polygon.
func (q *TrackQuery) InRegion(region Polygon) *TrackQuery {
	q.region = region
	q.hasRegion = true
	return q
}

// HotSpot makes Frames match frames where at least n object centers fall
// within some circle of the given radius (overrides InRegion for the
// frame predicate).
func (q *TrackQuery) HotSpot(radius float64, n int) *TrackQuery {
	q.hotRadius = radius
	q.hotN = n
	return q
}

// MinCount sets the minimum number of qualifying objects per matched
// frame (default 1).
func (q *TrackQuery) MinCount(n int) *TrackQuery {
	q.minCount = n
	return q
}

// Limit caps the number of frames Frames returns per clip (default 10).
func (q *TrackQuery) Limit(n int) *TrackQuery {
	q.limit = n
	return q
}

// MinSep requires at least sec seconds between returned frames.
func (q *TrackQuery) MinSep(sec float64) *TrackQuery {
	q.minSepSec = sec
	return q
}

// Movements supplies the labeled movements (and endpoint tolerance) for
// Breakdown.
func (q *TrackQuery) Movements(movements []Movement, maxEndpointDist float64) *TrackQuery {
	q.movements = movements
	q.maxDist = maxEndpointDist
	return q
}

// predicate assembles the frame predicate the constraints imply.
func (q *TrackQuery) predicate() query.FramePredicate {
	switch {
	case q.hotN > 0:
		return query.HotSpotPredicate{Radius: q.hotRadius, N: q.hotN}
	case q.hasRegion:
		return query.RegionPredicate{Region: q.region, N: q.minCount}
	default:
		return query.CountPredicate{N: q.minCount}
	}
}

// ---- Terminals (one indexed query each, per-clip results) ----

// Count returns the number of matching tracks per clip.
func (q *TrackQuery) Count() []int {
	return q.ts.Index().CountTracks(q.cat)
}

// Frames runs the frame-level limit query implied by the constraints:
// region and hot-spot constraints become the frame predicate, MinCount
// the per-frame threshold, Limit/MinSep the result shaping.
func (q *TrackQuery) Frames() [][]FrameMatch {
	minSep := int(q.minSepSec * float64(q.ts.ctx.FPS))
	return q.ts.Index().LimitQuery(q.cat, q.predicate(), q.limit, minSep)
}

// Dwell returns, per clip, seconds each matching track's center spends
// inside the region set with InRegion (keyed by track ID).
func (q *TrackQuery) Dwell() []map[int]float64 {
	return q.ts.Index().DwellTime(q.cat, q.region)
}

// AvgVisible returns, per clip, the average number of matching objects
// visible per frame.
func (q *TrackQuery) AvgVisible() []float64 {
	return q.ts.Index().AvgVisible(q.cat)
}

// Breakdown classifies matching tracks against the movements set with
// Movements and returns per-clip counts per movement name.
func (q *TrackQuery) Breakdown() []map[string]int {
	return q.ts.Index().PathBreakdown(q.cat, q.movements, q.maxDist)
}
