package otif_test

import (
	"errors"
	"testing"

	"otif"
)

// trainedPipe builds one small trained pipeline shared by the package's
// integration tests.
var trainedPipe *otif.Pipeline
var trainedCurve []otif.Point

func pipeline(t *testing.T) (*otif.Pipeline, []otif.Point) {
	t.Helper()
	if trainedPipe != nil {
		return trainedPipe, trainedCurve
	}
	pipe, err := otif.Open("caldot1", otif.Options{ClipsPerSet: 3, ClipSeconds: 5})
	if err != nil {
		t.Fatal(err)
	}
	pipe.Train()
	trainedPipe = pipe
	trainedCurve, err = pipe.Tune()
	if err != nil {
		t.Fatal(err)
	}
	return trainedPipe, trainedCurve
}

func TestOpenUnknownDataset(t *testing.T) {
	if _, err := otif.Open("nope", otif.Options{}); err == nil {
		t.Error("unknown dataset must error")
	}
}

func TestDatasets(t *testing.T) {
	if got := len(otif.Datasets()); got != 7 {
		t.Errorf("datasets = %d, want 7", got)
	}
}

func TestEndToEndWorkflow(t *testing.T) {
	pipe, curve := pipeline(t)
	if len(curve) < 3 {
		t.Fatalf("curve has %d points", len(curve))
	}
	// Workflow of Figure 1: pick a point, extract over the dataset.
	pick, err := otif.PickFastestWithin(curve, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := pipe.Extract(pick.Cfg, otif.Test)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Runtime <= 0 {
		t.Error("zero extraction runtime")
	}
	acc, err := pipe.Accuracy(ts, otif.Test)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.2 {
		t.Errorf("test accuracy = %v, suspiciously low", acc)
	}

	// Queries over stored tracks.
	counts := ts.CountTracks("car")
	if len(counts) != 3 {
		t.Fatalf("counts per clip = %d", len(counts))
	}
	movements := pipe.Movements()
	if len(movements) == 0 {
		t.Fatal("caldot1 should expose movements")
	}
	bd := ts.PathBreakdown("car", movements, 160)
	if len(bd) != 3 {
		t.Error("per-clip breakdown size wrong")
	}
	_ = ts.HardBraking(250)
	_ = ts.AvgVisible("car")
	_ = ts.BusyFrames("car", 2, "car", 2)
	lq := ts.LimitQuery("car", otif.CountPredicate{N: 1}, 5, 1)
	if len(lq) != 3 {
		t.Error("limit query per-clip size wrong")
	}
}

func TestTuneBeforeTrainErrors(t *testing.T) {
	pipe, err := otif.Open("caldot1", otif.Options{ClipsPerSet: 1, ClipSeconds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipe.Tune(); !errors.Is(err, otif.ErrNotTrained) {
		t.Errorf("Tune before Train: err = %v, want ErrNotTrained", err)
	}
}

func TestPickFastestWithinEmptyCurve(t *testing.T) {
	if _, err := otif.PickFastestWithin(nil, 0.05); !errors.Is(err, otif.ErrEmptyCurve) {
		t.Errorf("empty curve: err = %v, want ErrEmptyCurve", err)
	}
}

func TestCurveAccessor(t *testing.T) {
	pipe, curve := pipeline(t)
	got := pipe.Curve()
	if len(got) != len(curve) {
		t.Error("Curve() should return the last tuning result")
	}
}

func TestExtractBadSet(t *testing.T) {
	pipe, curve := pipeline(t)
	if _, err := pipe.Extract(curve[0].Cfg, otif.SetName("bogus")); err == nil {
		t.Error("bad set name must error")
	}
}

func TestSpeedupAtMatchedAccuracy(t *testing.T) {
	// The central claim in miniature: within the curve, the fastest
	// configuration within 5% of the best accuracy is several times
	// faster than the slowest.
	_, curve := pipeline(t)
	pick, err := otif.PickFastestWithin(curve, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	slowest := curve[0]
	if pick.Runtime > slowest.Runtime/2 {
		t.Errorf("tuned speedup only %.1fx", slowest.Runtime/pick.Runtime)
	}
}
