package otif_test

import (
	"bytes"
	"errors"
	"testing"

	"otif"
)

func TestPipelinePersistenceRoundtrip(t *testing.T) {
	pipe, curve := pipeline(t)
	pick, err := otif.PickFastestWithin(curve, 0.05)
	if err != nil {
		t.Fatal(err)
	}

	var bundle bytes.Buffer
	if err := pipe.SaveModels(&bundle); err != nil {
		t.Fatal(err)
	}
	if bundle.Len() == 0 {
		t.Fatal("empty bundle")
	}

	pipe2, err := otif.Open("caldot1", otif.Options{ClipsPerSet: 3, ClipSeconds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := pipe2.LoadModels(bytes.NewReader(bundle.Bytes())); err != nil {
		t.Fatal(err)
	}

	a, err := pipe.Extract(pick.Cfg, otif.Test)
	if err != nil {
		t.Fatal(err)
	}
	b, err := pipe2.Extract(pick.Cfg, otif.Test)
	if err != nil {
		t.Fatal(err)
	}
	if a.Runtime != b.Runtime {
		t.Errorf("loaded pipeline runtime %v != original %v", b.Runtime, a.Runtime)
	}
	ca, cb := a.CountTracks("car"), b.CountTracks("car")
	for i := range ca {
		if ca[i] != cb[i] {
			t.Errorf("clip %d: loaded pipeline counts %d != %d", i, cb[i], ca[i])
		}
	}
}

func TestLoadModelsWrongDataset(t *testing.T) {
	pipe, _ := pipeline(t)
	var bundle bytes.Buffer
	if err := pipe.SaveModels(&bundle); err != nil {
		t.Fatal(err)
	}
	other, err := otif.Open("tokyo", otif.Options{ClipsPerSet: 3, ClipSeconds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if err := other.LoadModels(bytes.NewReader(bundle.Bytes())); err == nil {
		t.Error("loading a caldot1 bundle into tokyo must fail")
	}
}

func TestTrackSetPersistence(t *testing.T) {
	pipe, curve := pipeline(t)
	pick, err := otif.PickFastestWithin(curve, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := pipe.Extract(pick.Cfg, otif.Test)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	n, err := ts.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := pipe.ReadTrackSetFor(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	a, b := ts.CountTracks(""), got.CountTracks("")
	if len(a) != len(b) {
		t.Fatal("clip counts differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("clip %d: %d vs %d tracks", i, a[i], b[i])
		}
	}
	// Frame-level queries work identically on the reloaded set.
	la := ts.LimitQuery("car", otif.CountPredicate{N: 1}, 3, 1)
	lb := got.LimitQuery("car", otif.CountPredicate{N: 1}, 3, 1)
	for i := range la {
		if len(la[i]) != len(lb[i]) {
			t.Errorf("clip %d: limit query %d vs %d matches", i, len(la[i]), len(lb[i]))
		}
	}
}

// TestTrackSetV2SelfDescribing asserts the format-v2 contract: a file
// written by WriteTo reloads with zero positional arguments, carrying its
// clip geometry and dataset name in the header, and answers queries
// identically to the original set.
func TestTrackSetV2SelfDescribing(t *testing.T) {
	pipe, curve := pipeline(t)
	pick, err := otif.PickFastestWithin(curve, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := pipe.Extract(pick.Cfg, otif.Test)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ts.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := otif.ReadTrackSet(bytes.NewReader(buf.Bytes())) // no options
	if err != nil {
		t.Fatal(err)
	}
	if got.Dataset != "caldot1" {
		t.Errorf("Dataset from header = %q, want caldot1", got.Dataset)
	}
	a, b := ts.CountTracks("car"), got.CountTracks("car")
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("clip %d: %d vs %d car tracks", i, a[i], b[i])
		}
	}
	// Frame-window queries must work without any caller-supplied context:
	// the header's geometry drives the sweep.
	la := ts.LimitQuery("car", otif.CountPredicate{N: 1}, 3, 1)
	lb := got.LimitQuery("car", otif.CountPredicate{N: 1}, 3, 1)
	for i := range la {
		if len(la[i]) != len(lb[i]) {
			t.Errorf("clip %d: limit query %d vs %d matches on header-described set", i, len(la[i]), len(lb[i]))
		}
	}
}

// TestTrackSetV1Compat asserts a v1 track file (written by the pre-v2
// positional format) still round-trips through the new loader, both via
// options and via the deprecated legacy wrapper.
func TestTrackSetV1Compat(t *testing.T) {
	pipe, curve := pipeline(t)
	pick, err := otif.PickFastestWithin(curve, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := pipe.Extract(pick.Cfg, otif.Test)
	if err != nil {
		t.Fatal(err)
	}
	var v1 bytes.Buffer
	if err := otif.WriteTrackSetV1ForTest(&v1, ts); err != nil {
		t.Fatal(err)
	}
	sys := pipe.System()
	ctx := sys.Ctx()

	got, err := otif.ReadTrackSet(bytes.NewReader(v1.Bytes()),
		otif.WithFPS(ctx.FPS), otif.WithGeometry(ctx.NomW, ctx.NomH),
		otif.WithFramesPerClip(ctx.Frames))
	if err != nil {
		t.Fatal(err)
	}
	leg, err := otif.ReadTrackSetLegacy(bytes.NewReader(v1.Bytes()),
		ctx.FPS, ctx.NomW, ctx.NomH, ctx.Frames)
	if err != nil {
		t.Fatal(err)
	}
	want := ts.CountTracks("")
	for i, w := range want {
		if got.CountTracks("")[i] != w || leg.CountTracks("")[i] != w {
			t.Errorf("clip %d: v1 reload counts diverge", i)
		}
	}
	la := ts.LimitQuery("car", otif.CountPredicate{N: 1}, 3, 1)
	lb := got.LimitQuery("car", otif.CountPredicate{N: 1}, 3, 1)
	for i := range la {
		if len(la[i]) != len(lb[i]) {
			t.Errorf("clip %d: v1 reload limit query diverges", i)
		}
	}
}

func TestSaveModelsBeforeTrainErrors(t *testing.T) {
	pipe, err := otif.Open("caldot1", otif.Options{ClipsPerSet: 1, ClipSeconds: 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pipe.SaveModels(&buf); !errors.Is(err, otif.ErrNotTrained) {
		t.Errorf("SaveModels before Train: err = %v, want ErrNotTrained", err)
	}
	if buf.Len() != 0 {
		t.Error("SaveModels wrote bytes before failing")
	}
}

func TestAnalyticsQueries(t *testing.T) {
	pipe, curve := pipeline(t)
	pick, err := otif.PickFastestWithin(curve, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := pipe.Extract(pick.Cfg, otif.Test)
	if err != nil {
		t.Fatal(err)
	}

	// Speeding at an impossible threshold finds nothing; at zero it finds
	// every track of every clip.
	none := ts.Speeding(1e12)
	for _, clip := range none {
		if len(clip) != 0 {
			t.Error("impossible speed threshold matched tracks")
		}
	}
	all := ts.Speeding(0)
	counts := ts.CountTracks("")
	for i, clip := range all {
		if len(clip) != counts[i] {
			t.Errorf("clip %d: speeding(0) = %d, tracks = %d", i, len(clip), counts[i])
		}
	}

	// Dwell time inside the whole frame equals each track's duration.
	nomW := float64(pipe.System().DS.Cfg.NomW)
	nomH := float64(pipe.System().DS.Cfg.NomH)
	whole := otif.Polygon{
		{X: -1, Y: -1}, {X: nomW + 1, Y: -1},
		{X: nomW + 1, Y: nomH + 1}, {X: -1, Y: nomH + 1},
	}
	dw := ts.DwellTime("", whole)
	for i, clip := range dw {
		if len(clip) != counts[i] {
			t.Errorf("clip %d: dwell entries %d, tracks %d", i, len(clip), counts[i])
		}
	}

	// Co-occurrences at a huge radius >= co-occurrences at a tiny radius.
	big := ts.CoOccurrences("", 1e9)
	small := ts.CoOccurrences("", 1)
	for i := range big {
		if big[i] < small[i] {
			t.Errorf("clip %d: co-occurrence monotonicity violated", i)
		}
	}

	// TrackSpeed on a real track is positive.
	for _, clip := range ts.PerClip {
		for _, tr := range clip {
			if st := ts.TrackSpeed(tr); st.Mean <= 0 {
				t.Error("zero mean speed for a moving track")
			}
			break
		}
		break
	}
}
