package otif_test

// Benchmarks, one per table and figure of the paper's evaluation (§4).
// Each benchmark drives the same harness as cmd/benchtables on a reduced
// dataset subset so `go test -bench=.` completes on a laptop; run
// `go run ./cmd/benchtables -all` for the full seven-dataset regeneration.
//
// The reported ns/op measure harness wall time; the *paper-relevant*
// numbers (simulated runtimes, accuracies, speedup ratios) are attached
// with b.ReportMetric so the benchmark output doubles as a results table.

import (
	"io"
	"sync"
	"testing"

	"otif/internal/bench"
	"otif/internal/dataset"
)

// benchSpec keeps benchmark iterations affordable; runtimes are scaled to
// the paper's one-hour sets by the harness.
var benchSpec = dataset.SetSpec{Clips: 4, ClipSeconds: 6}

var (
	suiteOnce sync.Once
	suite     *bench.Suite
)

func sharedSuite() *bench.Suite {
	suiteOnce.Do(func() { suite = bench.NewSuite(benchSpec, 7) })
	return suite
}

// BenchmarkTable2 regenerates Table 2 (track-query runtimes of OTIF vs the
// five detect/track baselines) on a two-dataset subset and reports the
// headline ratios.
func BenchmarkTable2(b *testing.B) {
	s := sharedSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Table2(io.Discard, []string{"caldot1", "warsaw"})
		if err != nil {
			b.Fatal(err)
		}
		var vsMiris1, vsMiris5 float64
		n := 0
		for _, row := range rows {
			o, okO := row.OneQuery["OTIF"]
			m, okM := row.OneQuery["Miris"]
			if !okO || !okM || o == 0 {
				continue
			}
			vsMiris1 += m / o
			vsMiris5 += row.FiveQ["Miris"] / row.FiveQ["OTIF"]
			n++
		}
		if n > 0 {
			b.ReportMetric(vsMiris1/float64(n), "speedup-vs-miris-1q")
			b.ReportMetric(vsMiris5/float64(n), "speedup-vs-miris-5q")
		}
	}
}

// BenchmarkFigure5 regenerates the speed-accuracy curves behind Figure 5
// on one dataset, reporting OTIF's curve span.
func BenchmarkFigure5(b *testing.B) {
	s := sharedSuite()
	for i := 0; i < b.N; i++ {
		curves, err := s.Figure5(io.Discard, []string{"caldot1"})
		if err != nil {
			b.Fatal(err)
		}
		for _, c := range curves["caldot1"] {
			if c.Method != "OTIF" || len(c.Points) == 0 {
				continue
			}
			slow := c.Points[0].Runtime
			fast := slow
			for _, p := range c.Points {
				if p.Runtime < fast {
					fast = p.Runtime
				}
				if p.Runtime > slow {
					slow = p.Runtime
				}
			}
			if fast > 0 {
				b.ReportMetric(slow/fast, "otif-curve-span-x")
			}
		}
	}
}

// BenchmarkTable3 regenerates the frame-level limit query comparison
// (OTIF vs BlazeIt vs TASTI) on two of the six queries.
func BenchmarkTable3(b *testing.B) {
	s := sharedSuite()
	for i := 0; i < b.N; i++ {
		res, err := s.Table3(io.Discard, []string{"caldot1", "warsaw"})
		if err != nil {
			b.Fatal(err)
		}
		otif5 := res.PreprocessTime["OTIF"] + 5*res.QueryTime["OTIF"]
		blaze5 := 5 * (res.PreprocessTime["BlazeIt"] + res.QueryTime["BlazeIt"])
		if otif5 > 0 {
			b.ReportMetric(blaze5/otif5, "speedup-vs-blazeit-5q")
		}
		b.ReportMetric(res.Accuracy["OTIF"]*100, "otif-accuracy-pct")
	}
}

// BenchmarkFigure6 regenerates the cost breakdown on Caldot1 and reports
// the execution detect/decode split.
func BenchmarkFigure6(b *testing.B) {
	s := sharedSuite()
	for i := 0; i < b.N; i++ {
		res, err := s.Figure6(io.Discard, "caldot1")
		if err != nil {
			b.Fatal(err)
		}
		if res != nil {
			b.ReportMetric(res.Execution["detect"], "exec-detect-s")
			b.ReportMetric(res.Execution["decode"], "exec-decode-s")
			b.ReportMetric(res.Preprocessing["train-detector"], "pre-train-detector-s")
		}
	}
}

// BenchmarkTable4 regenerates the ablation study on Caldot1.
func BenchmarkTable4(b *testing.B) {
	s := sharedSuite()
	for i := 0; i < b.N; i++ {
		rows, err := s.Table4(io.Discard, []string{"caldot1"})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 4 {
			b.ReportMetric(rows[0].Runtime["caldot1"], "detector-only-s")
			b.ReportMetric(rows[3].Runtime["caldot1"], "full-otif-s")
		}
	}
}

// BenchmarkFigure7 regenerates the segmentation proxy model analysis.
func BenchmarkFigure7(b *testing.B) {
	s := sharedSuite()
	for i := 0; i < b.N; i++ {
		left, right, err := s.Figure7(io.Discard, "caldot1")
		if err != nil {
			b.Fatal(err)
		}
		var yoloBest, proxyBest float64
		for _, p := range left {
			if p.Method == "yolo" && p.MAP > yoloBest {
				yoloBest = p.MAP
			}
			if p.Method == "proxy-k3" && p.MAP > proxyBest {
				proxyBest = p.MAP
			}
		}
		b.ReportMetric(yoloBest, "yolo-best-mAP")
		b.ReportMetric(proxyBest, "proxy-k3-mAP")
		if len(right) > 0 {
			b.ReportMetric(float64(len(right)), "pr-curves")
		}
	}
}

// BenchmarkValidate regenerates the §4.6 implementation validation.
func BenchmarkValidate(b *testing.B) {
	s := sharedSuite()
	for i := 0; i < b.N; i++ {
		res := s.Validate(io.Discard)
		b.ReportMetric(res.ProxySeconds, "proxy-33h-s")
	}
}
