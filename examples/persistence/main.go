// Persistence: the deployment workflow — train the models once, persist
// the model bundle and the extracted tracks to disk, then reload both in a
// "fresh process" and answer queries without any retraining or
// re-processing. The reloaded pipeline reproduces extraction results
// bit-for-bit.
//
//	go run ./examples/persistence
package main

import (
	"bytes"
	"fmt"
	"log"

	"otif"
)

func main() {
	// --- Training process -------------------------------------------------
	pipe, err := otif.Open("caldot1", otif.Options{ClipsPerSet: 3, ClipSeconds: 5})
	if err != nil {
		log.Fatal(err)
	}
	pipe.Train()
	curve, err := pipe.Tune()
	if err != nil {
		log.Fatal(err)
	}
	pick, err := otif.PickFastestWithin(curve, 0.05)
	if err != nil {
		log.Fatal(err)
	}

	var modelBundle bytes.Buffer
	if err := pipe.SaveModels(&modelBundle); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("model bundle: %d bytes\n", modelBundle.Len())

	tracks, err := pipe.Extract(pick.Cfg, otif.Test)
	if err != nil {
		log.Fatal(err)
	}
	var trackFile bytes.Buffer
	if _, err := tracks.WriteTo(&trackFile); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("track set: %d bytes for %d clips\n", trackFile.Len(), len(tracks.PerClip))

	// --- Fresh process: reload instead of retraining ----------------------
	pipe2, err := otif.Open("caldot1", otif.Options{ClipsPerSet: 3, ClipSeconds: 5})
	if err != nil {
		log.Fatal(err)
	}
	if err := pipe2.LoadModels(bytes.NewReader(modelBundle.Bytes())); err != nil {
		log.Fatal(err)
	}
	tracks2, err := pipe2.Extract(pick.Cfg, otif.Test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reloaded pipeline extraction: %.4f vs %.4f simulated seconds (identical: %v)\n",
		tracks2.Runtime, tracks.Runtime, tracks2.Runtime == tracks.Runtime)

	// --- Or skip extraction entirely: reload the stored tracks ------------
	// WriteTo writes the self-describing v2 format, so the file reloads
	// with zero positional arguments: frame rate, geometry, clip length
	// and dataset name all come from the header.
	stored, err := otif.ReadTrackSet(bytes.NewReader(trackFile.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("header-described set: dataset=%q clips=%d\n", stored.Dataset, len(stored.PerClip))
	a := tracks.CountTracks("car")
	b := stored.CountTracks("car")
	fmt.Printf("car counts, extracted vs reloaded-from-disk: %v vs %v\n", a, b)
	for i := range a {
		if a[i] != b[i] {
			log.Fatal("stored tracks diverge from the originals")
		}
	}

	// Queries run through the indexed store via the fluent builder; the
	// results are bit-identical to the linear scans over the same tracks.
	busiest := stored.Query().Category("car").MinCount(2).Limit(3).MinSep(1).Frames()
	for clip, frames := range busiest {
		for _, m := range frames {
			fmt.Printf("clip %d frame %d: %d cars visible\n", clip, m.FrameIdx, len(m.Boxes))
		}
	}
	fmt.Println("stored tracks answer queries with zero re-processing")
}
