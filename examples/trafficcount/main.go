// Trafficcount: a turning-movement count on the Tokyo junction analog —
// the motivating traffic-planning workload from the paper's introduction.
//
// The junction has ten labeled movements (straight-through and turning
// paths). After one OTIF pre-processing pass, the per-movement counts of
// every clip come straight from the stored tracks, and the same tracks
// answer a follow-up question (which movement is busiest per clip) at no
// extra cost.
//
//	go run ./examples/trafficcount
package main

import (
	"fmt"
	"log"
	"sort"

	"otif"
)

func main() {
	pipe, err := otif.Open("tokyo", otif.Options{ClipsPerSet: 3, ClipSeconds: 6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("training on the tokyo junction analog (10 movements)...")
	pipe.Train()
	curve, err := pipe.Tune()
	if err != nil {
		log.Fatal(err)
	}
	pick, err := otif.PickFastestWithin(curve, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuned configuration: %v (%.2f simulated s over the validation set)\n\n",
		pick.Cfg, pick.Runtime)

	tracks, err := pipe.Extract(pick.Cfg, otif.Test)
	if err != nil {
		log.Fatal(err)
	}

	movements := pipe.Movements()
	tolerance := 0.22 * float64(pipe.System().DS.Cfg.NomW)
	perClip := tracks.PathBreakdown("car", movements, tolerance)

	// Aggregate the turning movement count across clips.
	agg := map[string]int{}
	for _, clip := range perClip {
		for name, n := range clip {
			agg[name] += n
		}
	}
	names := make([]string, 0, len(agg))
	for n := range agg {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Println("turning movement counts over the test set:")
	for _, n := range names {
		fmt.Printf("  %-6s %d\n", n, agg[n])
	}

	// Exploratory follow-up (free — the tracks are already extracted):
	// the busiest movement of each clip.
	fmt.Println("\nbusiest movement per clip:")
	for i, clip := range perClip {
		bestName, bestN := "-", -1
		for name, n := range clip {
			if n > bestN || (n == bestN && name < bestName) {
				bestName, bestN = name, n
			}
		}
		fmt.Printf("  clip %d: %s (%d cars)\n", i, bestName, bestN)
	}
}
