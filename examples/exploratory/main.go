// Exploratory: the multi-query analytics session that motivates tracker
// pre-processing (§1, §3 of the paper). Video query optimizers pay a
// per-query execution phase; OTIF pays one pre-processing pass and then
// answers every follow-up question from the stored tracks in milliseconds
// of simulated time.
//
// The session runs the paper's four example queries over the Caldot1
// highway analog: hard-braking cars, busy frames, average visible cars,
// and traffic volume — plus a frame-level limit query.
//
//	go run ./examples/exploratory
package main

import (
	"fmt"
	"log"

	"otif"
)

func main() {
	pipe, err := otif.Open("caldot1", otif.Options{ClipsPerSet: 4, ClipSeconds: 6})
	if err != nil {
		log.Fatal(err)
	}
	pipe.Train()
	curve, err := pipe.Tune()
	if err != nil {
		log.Fatal(err)
	}
	pick, err := otif.PickFastestWithin(curve, 0.05)
	if err != nil {
		log.Fatal(err)
	}

	tracks, err := pipe.Extract(pick.Cfg, otif.Test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pre-processing: all tracks extracted in %.2f simulated seconds\n", tracks.Runtime)
	fmt.Println("\nexploratory session over the stored tracks:")

	// Query 1: find cars that brake hard (the paper's example query 1).
	braking := tracks.HardBraking(250)
	nb := 0
	for clip, ts := range braking {
		for _, tr := range ts {
			fmt.Printf("  hard braking: clip %d track %d (%d detections)\n", clip, tr.ID, len(tr.Dets))
			nb++
		}
	}
	if nb == 0 {
		fmt.Println("  hard braking: none found")
	}

	// Query 2: frames with several cars at once (example query 2 shape).
	busy := tracks.BusyFrames("car", 3, "car", 3)
	total := 0
	for _, frames := range busy {
		total += len(frames)
	}
	fmt.Printf("  frames with >= 3 cars visible: %d\n", total)

	// Query 3: average number of cars visible over time (example query 3).
	avg := tracks.AvgVisible("car")
	fmt.Printf("  average visible cars per clip: ")
	for _, a := range avg {
		fmt.Printf("%.1f ", a)
	}
	fmt.Println()

	// Query 4: traffic volume — unique cars over time (example query 4).
	counts := tracks.CountTracks("car")
	fmt.Printf("  traffic volume (unique cars per clip): %v\n", counts)

	// Query 5: a frame-level limit query (the §4.2 workload): the first
	// few well-separated frames with at least 2 cars.
	matches := tracks.LimitQuery("car", otif.CountPredicate{N: 2}, 3, 2)
	for clip, ms := range matches {
		for _, m := range ms {
			fmt.Printf("  limit query hit: clip %d frame %d (%d cars)\n", clip, m.FrameIdx, len(m.Boxes))
		}
	}

	fmt.Println("\nevery query above re-used the same pre-processing pass;")
	fmt.Println("a query optimizer would have re-processed video for each one.")
}
