// Quickstart: the minimal OTIF workflow from Figure 1 of the paper.
//
// Open a dataset, train the models, tune the speed-accuracy curve, pick a
// configuration, extract all tracks from the test set, and answer a query
// from the stored tracks.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"otif"
)

func main() {
	// 1. Sample the dataset (training/validation/test clip sets).
	pipe, err := otif.OpenWith("caldot1", otif.WithClips(4), otif.WithClipSeconds(6))
	if err != nil {
		log.Fatal(err)
	}

	// 2. Train: theta_best selection, segmentation proxy models, the
	//    recurrent reduced-rate tracker, and the endpoint refiner.
	best := pipe.Train()
	fmt.Println("theta_best:", best)

	// 3. Tune: the greedy joint tuner produces a speed-accuracy curve.
	curve, err := pipe.Tune()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nspeed-accuracy curve (validation set, simulated seconds):")
	for _, p := range curve {
		fmt.Printf("  %8.2fs  accuracy %.3f   %v\n", p.Runtime, p.Accuracy, p.Cfg)
	}

	// 4. Pick a point on the curve: the fastest within 5% of the best
	//    accuracy (the paper's Table 2 selection rule).
	pick, err := otif.PickFastestWithin(curve, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npicked: %v (%.1fx faster than the slowest point)\n",
		pick.Cfg, curve[0].Runtime/pick.Runtime)

	// 5. Extract all tracks from the test set.
	tracks, err := pipe.Extract(pick.Cfg, otif.Test)
	if err != nil {
		log.Fatal(err)
	}
	acc, err := pipe.Accuracy(tracks, otif.Test)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("extracted tracks in %.2f simulated seconds, accuracy %.3f\n",
		tracks.Runtime, acc)

	// 6. Query the stored tracks — no further decoding or inference.
	counts := tracks.CountTracks("car")
	total := 0
	for _, c := range counts {
		total += c
	}
	fmt.Printf("unique cars per clip: %v (total %d)\n", counts, total)
}
