package otif

import "otif/internal/obs"

// ProgressFunc receives structured progress events from tuning and
// extraction: one event per finished clip of an extraction, one per tuner
// iteration, one per evaluated candidate, and cache hit-rate snapshots.
// Events are observational only — they never change results — and may be
// delivered concurrently from parallel clip workers, so the callback must
// be safe for concurrent use.
type ProgressFunc = obs.Progress

// ProgressEvent is one structured progress event; see the obs.Event* kind
// constants re-exported below.
type ProgressEvent = obs.Event

// EventKind names a progress event type.
type EventKind = obs.EventKind

// Progress event kinds.
const (
	// EventTuneIter marks the start of one greedy tuner iteration.
	EventTuneIter = obs.EventTuneIter
	// EventCandidate reports one evaluated candidate configuration with
	// its validation runtime and accuracy.
	EventCandidate = obs.EventCandidate
	// EventClip reports one clip of an extraction finishing with its
	// simulated runtime.
	EventClip = obs.EventClip
	// EventCacheSnapshot reports the frame-cache hit rate at a milestone
	// (for example after the tuner's evaluation cache is built).
	EventCacheSnapshot = obs.EventCacheSnapshot
)

// openConfig collects the functional options accepted by OpenWith.
type openConfig struct {
	opts     Options
	progress obs.Progress
}

// Option configures OpenWith.
type Option func(*openConfig)

// WithOptions applies a full Options struct; later options override its
// fields. Open(name, opts) is shorthand for OpenWith(name, WithOptions(opts)).
func WithOptions(opts Options) Option {
	return func(c *openConfig) { c.opts = opts }
}

// WithSeed sets the seed driving dataset sampling and model initialization.
func WithSeed(seed int64) Option {
	return func(c *openConfig) { c.opts.Seed = seed }
}

// WithClips sets the number of clips sampled per set (train/val/test).
func WithClips(n int) Option {
	return func(c *openConfig) { c.opts.ClipsPerSet = n }
}

// WithClipSeconds sets the duration of each sampled clip in seconds.
func WithClipSeconds(s float64) Option {
	return func(c *openConfig) { c.opts.ClipSeconds = s }
}

// WithProgress attaches a progress callback to the pipeline. fn receives
// tuning and extraction events; it must be safe for concurrent use.
func WithProgress(fn ProgressFunc) Option {
	return func(c *openConfig) { c.progress = fn }
}
