package otif

import "otif/internal/obs"

// ProgressFunc receives structured progress events from tuning and
// extraction: one event per finished clip of an extraction, one per tuner
// iteration, one per evaluated candidate, and cache hit-rate snapshots.
// Events are observational only — they never change results — and may be
// delivered concurrently from parallel clip workers, so the callback must
// be safe for concurrent use.
type ProgressFunc = obs.Progress

// ProgressEvent is one structured progress event; see the obs.Event* kind
// constants re-exported below.
type ProgressEvent = obs.Event

// EventKind names a progress event type.
type EventKind = obs.EventKind

// Progress event kinds.
const (
	// EventTuneIter marks the start of one greedy tuner iteration.
	EventTuneIter = obs.EventTuneIter
	// EventCandidate reports one evaluated candidate configuration with
	// its validation runtime and accuracy.
	EventCandidate = obs.EventCandidate
	// EventClip reports one clip of an extraction finishing with its
	// simulated runtime.
	EventClip = obs.EventClip
	// EventCacheSnapshot reports the frame-cache hit rate at a milestone
	// (for example after the tuner's evaluation cache is built).
	EventCacheSnapshot = obs.EventCacheSnapshot
	// EventIngestClip reports one streamed clip publishing to the live
	// store during Pipeline.Ingest.
	EventIngestClip = obs.EventIngestClip
)

// openConfig collects the functional options accepted by OpenWith.
type openConfig struct {
	opts     Options
	progress obs.Progress
	knobs    []func() error
}

// Option configures OpenWith. The With* constructors below build Options;
// the performance knobs (WithParallelism, WithCacheMB, WithPrefetch,
// WithPrecision) return a KnobOption, which satisfies both Option and
// IngestOption so the same knob can be passed to OpenWith and to
// Pipeline.Ingest.
type Option interface {
	applyOpen(*openConfig)
}

// openOption adapts a plain function to Option.
type openOption func(*openConfig)

func (f openOption) applyOpen(c *openConfig) { f(c) }

// WithOptions applies a full Options struct; later options override its
// fields. Open(name, opts) is shorthand for OpenWith(name, WithOptions(opts)).
func WithOptions(opts Options) Option {
	return openOption(func(c *openConfig) { c.opts = opts })
}

// WithSeed sets the seed driving dataset sampling and model initialization.
func WithSeed(seed int64) Option {
	return openOption(func(c *openConfig) { c.opts.Seed = seed })
}

// WithClips sets the number of clips sampled per set (train/val/test).
func WithClips(n int) Option {
	return openOption(func(c *openConfig) { c.opts.ClipsPerSet = n })
}

// WithClipSeconds sets the duration of each sampled clip in seconds.
func WithClipSeconds(s float64) Option {
	return openOption(func(c *openConfig) { c.opts.ClipSeconds = s })
}

// WithProgress attaches a progress callback to the pipeline. fn receives
// tuning and extraction events; it must be safe for concurrent use.
func WithProgress(fn ProgressFunc) Option {
	return openOption(func(c *openConfig) { c.progress = fn })
}

// KnobOption is a process-wide performance knob expressed as a functional
// option. It satisfies both Option and IngestOption, so the same value can
// configure OpenWith and Pipeline.Ingest. Knobs delegate to the package
// Set* functions and therefore follow their precedence rule (see the
// package documentation): each one applies when the accepting call runs,
// and the most recent setting wins process-wide.
type KnobOption struct {
	apply func() error
}

func (k KnobOption) applyOpen(c *openConfig)     { c.knobs = append(c.knobs, k.apply) }
func (k KnobOption) applyIngest(c *ingestConfig) { c.knobs = append(c.knobs, k.apply) }

// WithParallelism sets the worker count for the session being opened, as
// SetParallelism does process-wide. n <= 0 restores the default
// (GOMAXPROCS).
func WithParallelism(n int) KnobOption {
	return KnobOption{func() error { SetParallelism(n); return nil }}
}

// WithCacheMB sets the frame cache budget in MiB for the session being
// opened, as SetCacheMB does process-wide. mb <= 0 disables caching.
func WithCacheMB(mb int) KnobOption {
	return KnobOption{func() error { SetCacheMB(mb); return nil }}
}

// WithPrefetch sets the clip reader decode-ahead depth for the session
// being opened, as SetPrefetch does process-wide. k <= 0 disables
// prefetching.
func WithPrefetch(k int) KnobOption {
	return KnobOption{func() error { SetPrefetch(k); return nil }}
}

// WithPrecision selects the numeric inference backend ("float64" or
// "float32") for the session being opened, as SetPrecision does
// process-wide. An unknown name makes the accepting call (OpenWith or
// Ingest) fail with SetPrecision's error, which lists the valid names.
func WithPrecision(name string) KnobOption {
	return KnobOption{func() error { return SetPrecision(name) }}
}
