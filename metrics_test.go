package otif_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"otif"
)

// deterministicParts strips the live gauges and the pool traffic counters
// from a snapshot. The remaining counters, per-stage costs and histograms
// are deterministic for a given sequence of operations at any worker
// count; cache hit/miss gauges depend on worker interleaving (two workers
// can race to miss the same key), and sync.Pool hit/miss counters depend
// both on interleaving and on the runtime itself (race-enabled builds
// randomly drop pooled items), so both are excluded from determinism
// comparisons.
func deterministicParts(s otif.MetricsSnapshot) otif.MetricsSnapshot {
	s.Gauges = nil
	counters := make(map[string]int64, len(s.Counters))
	for k, v := range s.Counters {
		if !strings.Contains(k, ".pool.") {
			counters[k] = v
		}
	}
	s.Counters = counters
	return s
}

func TestMetricsDeterministicAcrossWorkers(t *testing.T) {
	pipe, curve := pipeline(t)
	pick, err := otif.PickFastestWithin(curve, 0.05)
	if err != nil {
		t.Fatal(err)
	}

	var snaps []otif.MetricsSnapshot
	var runtimes []float64
	for _, w := range []int{1, 4} {
		otif.SetParallelism(w)
		otif.ResetMetrics()
		ts, err := pipe.Extract(pick.Cfg, otif.Test)
		if err != nil {
			t.Fatal(err)
		}
		snaps = append(snaps, deterministicParts(otif.Snapshot()))
		runtimes = append(runtimes, ts.Runtime)
	}
	otif.SetParallelism(0)

	if runtimes[0] != runtimes[1] {
		t.Errorf("runtime differs across worker counts: %v vs %v", runtimes[0], runtimes[1])
	}
	if !reflect.DeepEqual(snaps[0], snaps[1]) {
		t.Errorf("metrics differ across worker counts:\n w=1: %+v\n w=4: %+v", snaps[0], snaps[1])
	}
}

func TestMetricsOffIdenticalResults(t *testing.T) {
	pipe, curve := pipeline(t)
	pick, err := otif.PickFastestWithin(curve, 0.05)
	if err != nil {
		t.Fatal(err)
	}

	on, err := pipe.Extract(pick.Cfg, otif.Test)
	if err != nil {
		t.Fatal(err)
	}

	otif.SetMetricsEnabled(false)
	defer otif.SetMetricsEnabled(true)
	otif.ResetMetrics()
	off, err := pipe.Extract(pick.Cfg, otif.Test)
	if err != nil {
		t.Fatal(err)
	}

	// Metrics off must not perturb results: runtime and every extracted
	// track bit-identical.
	if on.Runtime != off.Runtime {
		t.Errorf("runtime with metrics off %v != with metrics on %v", off.Runtime, on.Runtime)
	}
	if !reflect.DeepEqual(on.PerClip, off.PerClip) {
		t.Error("extracted tracks differ with metrics disabled")
	}
	// And recording must actually have been off.
	snap := otif.Snapshot()
	if n := snap.Counters["run.clips"]; n != 0 {
		t.Errorf("run.clips = %d while metrics disabled, want 0", n)
	}
}

func TestSnapshotCostTotalMatchesRuntime(t *testing.T) {
	pipe, curve := pipeline(t)
	pick, err := otif.PickFastestWithin(curve, 0.05)
	if err != nil {
		t.Fatal(err)
	}

	// Bracketing exactly one extraction between ResetMetrics and Snapshot
	// reproduces its simulated runtime bit-for-bit: per-stage costs are
	// charged once per RunSet in sorted category order, the same fold the
	// cost accountant uses.
	otif.ResetMetrics()
	ts, err := pipe.Extract(pick.Cfg, otif.Test)
	if err != nil {
		t.Fatal(err)
	}
	snap := otif.Snapshot()
	if got := snap.CostTotal(); got != ts.Runtime {
		t.Errorf("CostTotal = %v, Runtime = %v; want bit-identical", got, ts.Runtime)
	}
	if n := snap.Counters["run.clips"]; n != 3 {
		t.Errorf("run.clips = %d, want 3", n)
	}
	if f := snap.Counters["run.frames"]; f <= 0 {
		t.Error("no frames recorded")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	pipe, curve := pipeline(t)
	pick, err := otif.PickFastestWithin(curve, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	otif.ResetMetrics()
	if _, err := pipe.Extract(pick.Cfg, otif.Test); err != nil {
		t.Fatal(err)
	}
	snap := otif.Snapshot()

	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back otif.MetricsSnapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap.Counters, back.Counters) {
		t.Error("counters did not survive the JSON round trip")
	}
	if !reflect.DeepEqual(snap.Costs, back.Costs) {
		t.Error("costs did not survive the JSON round trip")
	}

	var text bytes.Buffer
	if err := snap.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if text.Len() == 0 {
		t.Error("empty text export")
	}
}
