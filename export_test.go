package otif

import (
	"io"

	"otif/internal/persist"
)

// WriteTrackSetV1ForTest writes ts in the legacy v1 track layout so the
// compatibility tests can exercise the v1 load path of ReadTrackSet.
func WriteTrackSetV1ForTest(w io.Writer, ts *TrackSet) error {
	return persist.WriteTracks(w, ts.PerClip)
}
