package otif

import (
	"context"
	"fmt"
	"time"

	"otif/internal/ingest"
	"otif/internal/obs"
	"otif/internal/query"
	"otif/internal/store"
	"otif/internal/video"
)

// IngestStats is a consistent point-in-time snapshot of a streaming ingest
// session — the typed counterpart of scraping the metrics registry, as
// CacheStats is for the frame cache.
type IngestStats = ingest.Stats

// CameraIngestStats is one camera's slice of IngestStats.
type CameraIngestStats = ingest.CameraStats

// PublishedClip records one streamed clip's publication: which (camera,
// clip) pair landed at which index of the live store.
type PublishedClip = ingest.PublishedClip

// ingestConfig collects the functional options accepted by Ingest.
type ingestConfig struct {
	cameras  int
	limit    int
	interval time.Duration
	seconds  float64
	depth    int
	drop     bool
	cfg      *Config
	progress obs.Progress
	knobs    []func() error
}

// IngestOption configures Pipeline.Ingest. The performance knobs
// (WithParallelism, WithCacheMB, WithPrefetch, WithPrecision) also satisfy
// this interface.
type IngestOption interface {
	applyIngest(*ingestConfig)
}

// ingestOption adapts a plain function to IngestOption.
type ingestOption func(*ingestConfig)

func (f ingestOption) applyIngest(c *ingestConfig) { f(c) }

// WithCameras sets how many simulated camera streams the session ingests
// (default 1). Each camera is an independent deterministic feed over the
// pipeline's scene, seeded disjointly from the train/val/test sets.
func WithCameras(n int) IngestOption {
	return ingestOption(func(c *ingestConfig) { c.cameras = n })
}

// WithCameraClips bounds how many clips each camera emits; the session
// finishes naturally once every camera is exhausted and drained. The
// default (0) streams until the context is canceled or Close is called.
func WithCameraClips(n int) IngestOption {
	return ingestOption(func(c *ingestConfig) { c.limit = n })
}

// WithStreamInterval paces each camera's clip emissions on a wall-clock
// schedule. The default (0) emits on demand, as fast as queue backpressure
// allows.
func WithStreamInterval(d time.Duration) IngestOption {
	return ingestOption(func(c *ingestConfig) { c.interval = d })
}

// WithStreamClipSeconds sets the duration of each streamed clip; the
// default (0) uses the pipeline's sampled-set clip duration.
func WithStreamClipSeconds(s float64) IngestOption {
	return ingestOption(func(c *ingestConfig) { c.seconds = s })
}

// WithQueueDepth bounds the shared extraction queue; 0 selects twice the
// worker count. A full queue blocks producers (backpressure) unless
// WithDropWhenFull is set.
func WithQueueDepth(n int) IngestOption {
	return ingestOption(func(c *ingestConfig) { c.depth = n })
}

// WithDropWhenFull sheds clips instead of blocking producers when the
// extraction queue is full; dropped clips are counted in IngestStats.
func WithDropWhenFull(drop bool) IngestOption {
	return ingestOption(func(c *ingestConfig) { c.drop = drop })
}

// WithStreamConfig sets the pipeline configuration streamed clips run
// under, typically a point picked from the tuned speed-accuracy curve. The
// default is the best-accuracy configuration selected by Train.
func WithStreamConfig(cfg Config) IngestOption {
	return ingestOption(func(c *ingestConfig) { c.cfg = &cfg })
}

// WithStreamProgress attaches a progress callback receiving one
// EventIngestClip per published clip, overriding the pipeline's callback
// from WithProgress. Events arrive concurrently from clip workers.
func WithStreamProgress(fn ProgressFunc) IngestOption {
	return ingestOption(func(c *ingestConfig) { c.progress = fn })
}

// IngestSession is one running streaming ingest over a pipeline's trained
// models: N simulated cameras feeding a bounded extraction queue whose
// results publish incrementally to a live indexed store. Create with
// Pipeline.Ingest; stop with Close or by canceling the start context.
type IngestSession struct {
	s    *ingest.Session
	name string
}

// Ingest starts a streaming ingest session: per-camera sources emit
// fixed-length clips into a bounded shared queue, extraction workers run
// them through the trained pipeline, and every extracted clip appends
// atomically to a live indexed store that Store snapshots at any moment.
// It returns ErrNotTrained before Train (or LoadModels).
//
// Each (camera, clip) pair's extracted tracks are bit-identical to running
// that clip through Extract's batch path; only the publication order
// depends on worker timing.
func (p *Pipeline) Ingest(ctx context.Context, options ...IngestOption) (*IngestSession, error) {
	c := ingestConfig{cameras: 1}
	for _, o := range options {
		o.applyIngest(&c)
	}
	for _, k := range c.knobs {
		if err := k(); err != nil {
			return nil, err
		}
	}
	if p.sys.Recurrent == nil {
		return nil, ErrNotTrained
	}
	if c.cameras < 1 {
		c.cameras = 1
	}
	cfg := p.sys.Best
	if c.cfg != nil {
		cfg = *c.cfg
	}
	progress := c.progress
	if progress == nil {
		progress = p.progress
	}

	cams := make([]ingest.Camera, c.cameras)
	for i := 0; i < c.cameras; i++ {
		gen := p.sys.DS.Camera(i, c.seconds)
		cams[i] = ingest.Camera{
			Name:     fmt.Sprintf("%s-cam%d", p.sys.DS.Name, i),
			Clip:     func(j int) *video.Clip { return gen(j).Clip },
			Limit:    c.limit,
			Interval: c.interval,
		}
	}
	// Streamed clips may be longer or shorter than the sampled sets', so
	// derive the store's per-clip frame count from an actual camera clip
	// (camera feeds are deterministic; probing clip 0 is free of side
	// effects).
	qctx := p.sys.Ctx()
	qctx.Frames = p.sys.DS.Camera(0, c.seconds)(0).Clip.Len()

	s, err := ingest.Start(ctx, p.sys, ingest.Options{
		Cameras:      cams,
		Cfg:          cfg,
		QueueDepth:   c.depth,
		DropWhenFull: c.drop,
		Ctx:          qctx,
		Progress:     progress,
	})
	if err != nil {
		return nil, err
	}
	return &IngestSession{s: s, name: p.sys.DS.Name}, nil
}

// Store returns the current published snapshot of the live track store: a
// segmented store whose sealed segments are shared across snapshots plus
// one open tail segment. The snapshot is immutable and safe for concurrent
// queries while ingest continues; call Store again to observe newly
// published clips.
func (s *IngestSession) Store() store.Querier { return s.s.Store() }

// Stats snapshots the session's counters: clips ingested and dropped,
// current queue depth, and per-camera lag.
func (s *IngestSession) Stats() IngestStats { return s.s.Stats() }

// Published returns a copy of the publication log, mapping each live-store
// clip index back to its (camera, clip) origin.
func (s *IngestSession) Published() []PublishedClip { return s.s.Published() }

// Tracks materializes the session's published clips as a TrackSet, with
// the live store's already-built index adopted as the set's query index.
// The TrackSet is a snapshot: clips published after the call do not appear
// in it.
func (s *IngestSession) Tracks() *TrackSet {
	snap := s.s.Store()
	per := make([][]*query.Track, snap.Clips())
	for i := range per {
		per[i] = snap.Tracks(i)
	}
	ts := &TrackSet{
		PerClip: per,
		Runtime: s.s.Stats().Runtime,
		Dataset: s.name,
		ctx:     snap.Context(),
	}
	ts.idxOnce.Do(func() { ts.idx = snap })
	return ts
}

// Done returns a channel closed when the session has fully stopped.
func (s *IngestSession) Done() <-chan struct{} { return s.s.Done() }

// Wait blocks until the session stops: every bounded camera exhausted and
// drained (nil), or the start context canceled (its error). Published
// clips remain queryable either way.
func (s *IngestSession) Wait() error { return s.s.Wait() }

// Close cancels the session and waits for workers to drain. Clips in
// flight finish and publish; queued clips are abandoned. Close is
// idempotent.
func (s *IngestSession) Close() error { return s.s.Close() }
